"""The native execution tier: CodeObjects translated to Python closures.

The cycle-honest simulator in :mod:`repro.machine.cpu` fetches, decodes,
and dispatches one :class:`~repro.machine.isa.Instruction` at a time.
That loop is the hot path of every benchmark, fuzz run, and daemon
request.  Following the Emacs native-comp playbook ("Bringing GNU Emacs
to Native Code"), this module adds a second tier that compiles each
:class:`~repro.machine.isa.CodeObject` into *generated Python*, one
function per basic block, direct-threaded:

* the instruction stream is split at **leaders** -- index 0, every label
  target, the index after every terminator (branches, calls, RET, HALT),
  and every LOCK (which re-dispatches itself to spin);
* each block becomes one Python function that runs its instructions
  straight-line with operand addressing resolved at translation time
  (``regs[3]``, ``stack[_tp + 2]``, inline constants), always assigns
  ``m.pc``/``m.code`` on exit, and *returns* the successor
  :class:`NativeBlock` when the edge is static (branch targets and
  fall-throughs within the same CodeObject) so the dispatch loop can
  chain block-to-block without a lookup;
* hot opcodes (moves, raw arithmetic, branches, UNBOX/BOXF/PDLBOX, RET,
  known calls, GENERIC with a resolved primitive) are emitted inline;
  everything else falls back to the simulator's own ``_DISPATCH``
  handlers, so the two tiers share one runtime (heap, frames, catch
  stack, specials, locks).

Accounting is **block-granular** in this tier (see DESIGN.md): the
instruction count, fuel check, and static cycle cost are hoisted to
block entry, and opcode counts are materialized per executed block.
Totals (``instructions``, ``cycles``) agree exactly with the simulator
for any run both tiers complete; only *where within a block* fuel runs
out, GC triggers, and the stack high-water mark is sampled differ.
"""

from __future__ import annotations

from collections import Counter
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional

from ..datum import NIL, T
from ..datum.numbers import lisp_eql
from ..datum.symbols import sym
from ..errors import MachineError, WrongTypeError
from ..primitives import lookup_primitive
from .cpu import _DISPATCH, FrameRecord, _raw_binary, _raw_unary
from .isa import (
    CYCLES,
    CodeObject,
    Instruction,
    RAW_BINARY_OPS,
    RAW_UNARY_OPS,
)
from .timing import PipelineDescription, analyze as analyze_timing
from .values import HeapNumber, PdlNumber, is_raw_number, pointer_to_lisp

#: The execution tiers a Machine can run ("simulate" is the reference).
TIERS = ("simulate", "native")

#: Opcodes that end a basic block because control may leave it.
_BRANCHES = {"JMP", "JUMPNIL", "JUMPNNIL", "CMPBR", "EQLBR", "ARGDISPATCH"}
_CALLS = {"CALL", "KCALL", "CALLF", "TAILCALL", "TAILCALLF", "APPLYF"}
_TERMINATORS = _BRANCHES | _CALLS | {"RET", "HALT", "LOCK"}

_PY_RELATION = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=",
                "eq": "==", "ne": "!="}

_INLINE_BINARY = {
    "ADD": "_x + _y", "FADD": "_x + _y",
    "SUB": "_x - _y", "FSUB": "_x - _y",
    "MULT": "_x * _y", "FMULT": "_x * _y",
    "FMAX": "max(_x, _y)", "FMIN": "min(_x, _y)",
}

_INLINE_UNARY = {
    "NEG": "-_x", "FNEG": "-_x", "FABS": "abs(_x)", "FLT": "float(_x)",
}

#: Two-argument generic primitives whose behaviour on a pair of raw
#: int/float operands is exactly the Python operator (coerce_pair is the
#: identity there and normalize_number only touches Fractions), letting
#: generated code skip the full chain/fold implementation on the hot path.
_GENERIC_FAST2_ARITH = {"+": "+", "-": "-", "*": "*"}
_GENERIC_FAST2_CMP = {"=": "==", "<": "<", ">": ">", "<=": "<=", ">=": ">="}

#: One-argument generics with the same property: ``1+``/``1-`` on a raw
#: int/float are exactly the Python expression (generic_add with an int
#: literal coerces nothing and normalizes nothing on those types).
_GENERIC_FAST1 = {"1+": "_a0 + 1", "1-": "_a0 - 1"}


def _is_terminator(instruction: Instruction) -> bool:
    opcode = instruction.opcode
    if opcode in _TERMINATORS:
        return True
    # GENERIC throw unwinds to a catch record: control leaves the block.
    return (opcode == "GENERIC" and instruction.operands
            and instruction.operands[0][1] is sym("throw"))


# ---------------------------------------------------------------------------
# runtime slow paths shared by all generated blocks


def _need(word: Any, opcode: str) -> None:
    raise MachineError(
        f"{opcode}: operand is not a raw machine number: {word!r} "
        "(representation analysis bug?)")


def _rawbin_checked(opcode: str, a: Any, b: Any) -> Any:
    if not is_raw_number(a):
        _need(a, opcode)
    if not is_raw_number(b):
        _need(b, opcode)
    return _raw_binary(opcode, a, b)


def _rawun_checked(opcode: str, value: Any) -> Any:
    if not is_raw_number(value):
        _need(value, opcode)
    return _raw_unary(opcode, value)


def _unbox_slow(word: Any) -> Any:
    if isinstance(word, PdlNumber):
        return word.deref()
    if is_raw_number(word) and isinstance(word, int):
        return word
    if isinstance(word, Fraction):
        return float(word)
    raise WrongTypeError(f"not a number: {pointer_to_lisp(word)!r}")


def _boxf_slow(machine: Any, word: Any) -> Any:
    if not is_raw_number(word):
        _need(word, "BOXF")
    if isinstance(word, int):
        return word
    return machine.heap.allocate_number(word)


# ---------------------------------------------------------------------------
# translation


class NativeBlock:
    """One translated basic block plus its static accounting.

    ``run(machine)`` executes the block and returns the successor
    NativeBlock when control transfers along a static intra-code edge,
    or ``None`` when the dispatch loop must resolve ``m.code``/``m.pc``
    itself (calls to other CodeObjects, returns, halts, fallbacks)."""

    __slots__ = ("run", "start", "count", "cycles", "opcodes",
                 "attributions", "label", "tel_fast", "tel_fast_counts",
                 "tel_fallback", "tel_fallback_counts",
                 "tel_fallback_total")

    def __init__(self, run: Callable[[Any], Optional["NativeBlock"]],
                 start: int, count: int,
                 cycles: int, opcodes: Dict[str, int],
                 attributions: List[Any], label: str,
                 tel_fast: Dict[str, int], tel_fast_counts: Dict[str, int],
                 tel_fallback: Dict[str, int],
                 tel_fallback_counts: Dict[str, int]):
        self.run = run
        self.start = start          # leader pc
        self.count = count          # instructions in the block
        self.cycles = cycles        # static cycle cost of the block
        self.opcodes = opcodes      # opcode -> count within the block
        #: (index, opcode, static cycles) per instruction, for the profiler.
        self.attributions = attributions
        #: "function:leader" hotness key for telemetry.
        self.label = label
        #: Telemetry's static fast/fallback split: per-execution cycles
        #: and instruction counts by opcode.  "Fallback" here means the
        #: instruction's *primary* emission is a simulator handler call;
        #: tel_fast includes statically-known inline extras (a resolved
        #: GENERIC's primitive cycles), so
        #: ``sum(tel_fast) + sum(tel_fallback) == cycles + inline extras``
        #: and dynamic handler extras arrive via instrumented sites.
        self.tel_fast = tel_fast
        self.tel_fast_counts = tel_fast_counts
        self.tel_fallback = tel_fallback
        self.tel_fallback_counts = tel_fallback_counts
        self.tel_fallback_total = sum(tel_fallback.values())


class NativeCode:
    """A CodeObject's translation: block functions keyed by leader pc."""

    __slots__ = ("code", "blocks", "source")

    def __init__(self, code: CodeObject, blocks: Dict[int, NativeBlock],
                 source: str):
        self.code = code
        self.blocks = blocks
        self.source = source        # generated Python, for debugging

    @property
    def block_starts(self) -> List[int]:
        return sorted(self.blocks)


def _is_raw(var: str) -> str:
    return (f"(type({var}) is int or type({var}) is float"
            f" or type({var}) is complex)")


def _imm_raw(operand) -> bool:
    """Operand is an immediate whose raw-number-ness is decided now."""
    kind, value = operand
    return kind == "imm" and (type(value) is int or type(value) is float)


class _Translator:
    def __init__(self, code: CodeObject,
                 cycle_costs: Optional[Dict[str, int]] = None,
                 telemetry: bool = False,
                 pipeline: Optional[PipelineDescription] = None):
        self.code = code
        self.costs = CYCLES if cycle_costs is None else cycle_costs
        #: Telemetry mode: fallback sites are wrapped to report dynamic
        #: cycle extras and inline-cache probes bump hit/miss counters.
        #: Off (the default) generates exactly the uninstrumented code.
        self.telemetry = telemetry
        #: Pipelined timing model (timing="pipelined"): the block's static
        #: data/structural stalls are folded into its prologue charge and
        #: the simulator's control-hazard transfer rule -- flush iff
        #: ``code is not code_before or pc != index + 1`` -- is emitted at
        #: every transfer site, statically resolved where the target is
        #: known at translation time.  None generates exactly the
        #: single-cycle-table code.
        self.pipeline = pipeline
        self._tprof = None if pipeline is None \
            else analyze_timing(code, pipeline)
        self.ns: Dict[str, Any] = {
            "MachineError": MachineError,
            "NIL": NIL,
            "T": T,
            "FrameRecord": FrameRecord,
            "PdlNumber": PdlNumber,
            "HeapNumber": HeapNumber,
            "_eql": lisp_eql,
            "_ptl": pointer_to_lisp,
            "_need": _need,
            "_rawbin": _raw_binary,
            "_rawun": _raw_unary,
            "_rawbin_checked": _rawbin_checked,
            "_rawun_checked": _rawun_checked,
            "_unbox_slow": _unbox_slow,
            "_boxf_slow": _boxf_slow,
        }
        if pipeline is not None:
            # Dynamic transfer checks compare against the block's own
            # CodeObject (the simulator's ``code_before``).
            self.ns["_CODE"] = code
        self._kcount = 0
        self._size = len(code.instructions)
        # Per-instruction hoist lines (prepended by emit) and per-block
        # validity of the ``_tp`` / ``_fb`` base-address aliases.
        self._hoists: List[str] = []
        self._tp_ok = False
        self._fb_ok = False
        self._tel_ok = False
        # Telemetry classification, filled during emission: instruction
        # indices whose *primary* emission is a simulator handler call,
        # and statically-known inline cycle extras (resolved GENERICs).
        self._fallback_main: set = set()
        self._inline_extra: Dict[int, int] = {}
        self._block_start = 0

    # -- namespace helpers --------------------------------------------------

    def konst(self, value: Any) -> str:
        name = f"K{self._kcount}"
        self._kcount += 1
        self.ns[name] = value
        return name

    # -- operand addressing --------------------------------------------------

    def _temp_ref(self, offset: int) -> str:
        # ``m.tp`` is loop-invariant within a block (only ALLOCTEMPS and
        # fallback handlers move it, and both re-establish the alias), so
        # hoist it once per block on first use.
        if not self._tp_ok:
            self._hoists.append("_tp = m.tp")
            self._tp_ok = True
        return f"stack[_tp + {offset}]"

    def _frame_ref(self, offset: int) -> str:
        if not self._fb_ok:
            self._hoists.append("_fb = m.fp - stack[m.fp].nargs")
            self._fb_ok = True
        return f"stack[_fb + {offset}]"

    def read(self, operand) -> Optional[str]:
        kind, value = operand
        if kind == "reg":
            return f"regs[{value}]"
        if kind == "temp":
            return self._temp_ref(value)
        if kind == "frame":
            return self._frame_ref(value)
        if kind == "imm":
            if type(value) is int or type(value) is float:
                return repr(value)
            return self.konst(value)
        if kind == "env":
            return f"m.cp[{value}]"
        return None

    def write(self, operand, expr: str) -> Optional[str]:
        kind, value = operand
        if kind == "reg":
            return f"regs[{value}] = {expr}"
        if kind == "temp":
            return f"{self._temp_ref(value)} = {expr}"
        if kind == "frame":
            return f"{self._frame_ref(value)} = {expr}"
        return None

    def _goto(self, target: int, index: Optional[int] = None,
              taken: bool = True) -> List[str]:
        """Set pc and transfer to *target*: statically chained when a block
        starts there (every in-range static target is a leader), else a
        plain return for the dispatch loop to resolve.

        Under the pipelined model, *index* identifies the transferring
        instruction and the stall charge is resolved statically: a taken
        edge flushes the front end unless it lands on ``index + 1`` (the
        simulator's sequential-issue test), and a fall-through edge into
        the next block charges that boundary's data-hazard pair stall
        (zero across any instruction that could also have jumped, since
        those write no operand location)."""
        stall: List[str] = []
        pipeline = self.pipeline
        if pipeline is not None and index is not None:
            if taken:
                if target != index + 1 and pipeline.flush_cycles:
                    flush = pipeline.flush_cycles
                    stall = [f"m.cycles += {flush}",
                             f"m.stall_control += {flush}"]
            else:
                pair = self._tprof.pair[target] \
                    if target < self._size else 0
                if pair:
                    stall = [f"m.cycles += {pair}",
                             f"m.stall_data += {pair}"]
        if target < self._size:
            return stall + [f"m.pc = {target}", f"return B{target}"]
        return stall + [f"m.pc = {target}", "return"]

    def _flush_charge(self) -> List[str]:
        """Unconditional front-end flush (a transfer that is certain:
        calls into another CodeObject)."""
        if self.pipeline is None or not self.pipeline.flush_cycles:
            return []
        flush = self.pipeline.flush_cycles
        return [f"m.cycles += {flush}", f"m.stall_control += {flush}"]

    def _flush_check(self, index: int) -> List[str]:
        """The simulator's dynamic transfer test, emitted verbatim for
        sites whose successor is only known at run time (handler
        fallbacks, returns): flush unless execution continues at
        ``index + 1`` of this same CodeObject."""
        if self.pipeline is None or not self.pipeline.flush_cycles:
            return []
        flush = self.pipeline.flush_cycles
        return [f"if m.code is not _CODE or m.pc != {index + 1}:",
                f"    m.cycles += {flush}",
                f"    m.stall_control += {flush}"]

    def _push_frame_lines(self, ret_pc: int, nargs: int) -> List[str]:
        """Machine._push_frame, unrolled into the generated caller.  The
        frame is stamped with the caller's continuation block (ret_pc is
        a leader: every call is a terminator) so generated RET can hand
        control straight back without a dispatch-loop lookup."""
        ret_block = (f"B{ret_pc}" if ret_pc < self._size else "None")
        return ["_sn = m._serial + 1",
                "m._serial = _sn",
                f"_rec = FrameRecord(m.code, {ret_pc}, m.fp, m.tp, m.cp,"
                f" {nargs}, _sn, {ret_block})",
                "m._live_serials.add(_sn)",
                "stack.append(_rec)",
                "_fp = len(stack) - 1",
                "m.fp = _fp",
                "m.tp = _fp + 1",
                f"regs[5] = {nargs}",
                "m.call_count += 1"]

    def _tel_ref(self) -> str:
        if not self._tel_ok:
            self._hoists.append("_tel = m.telemetry")
            self._tel_ok = True
        return "_tel"

    def _fallback_call(self, instruction: Instruction, index: int) -> str:
        handler = _DISPATCH.get(instruction.opcode)
        if handler is None:
            # Match the simulator: the trap fires when (and only when) the
            # bad instruction is actually executed.
            return f"raise MachineError('bad opcode {instruction.opcode}')"
        hname, iname = f"_h{index}", f"_i{index}"
        if self.telemetry:
            # Wrap the handler to report its dynamic cycle extras (GENERIC
            # primitive costs, vector length costs) per opcode: cycle
            # conservation then holds exactly, static split + extras.
            block_label = f"{self.code.name}:{self._block_start}"

            def instrumented(m, _h=handler, _i=instruction,
                             _op=instruction.opcode, _blk=block_label):
                before = m.cycles
                _h(m, _i)
                m.telemetry.note_fallback(_op, _blk, m.cycles - before)

            self.ns[hname] = instrumented
            return f"{hname}(m)"
        self.ns[hname] = handler
        self.ns[iname] = instruction
        return f"{hname}(m, {iname})"

    # -- leaders ------------------------------------------------------------

    def leaders(self) -> List[int]:
        instructions = self.code.instructions
        n = len(instructions)
        leaders = {0}
        for index in self.code.labels.values():
            leaders.add(index)
        for index, instruction in enumerate(instructions):
            if _is_terminator(instruction):
                leaders.add(index + 1)
            if instruction.opcode == "LOCK":
                # LOCK spins by re-dispatching itself: it must be
                # addressable as a block of its own.
                leaders.add(index)
        return sorted(index for index in leaders if index < n)

    # -- per-instruction emission -------------------------------------------

    def emit(self, index: int) -> List[str]:
        """Source lines for instruction *index* (relative indent 0),
        including any base-address hoists its operands require."""
        self._hoists = []
        lines = self._emit(index)
        if self._hoists:
            lines = self._hoists + lines
        return lines

    def _emit(self, index: int) -> List[str]:
        instruction = self.code.instructions[index]
        op = instruction.opcode
        ops = instruction.operands
        konst = self.konst
        read = self.read
        write_or_none = self.write

        def fallback():
            # A full handler may move tp (ARGEXPAND, RESTCOLLECT) or edit
            # the frame record, so the hoisted aliases die here.
            self._tp_ok = False
            self._fb_ok = False
            self._fallback_main.add(index)
            self._inline_extra.pop(index, None)
            return [self._fallback_call(instruction, index)]

        if op == "MOV":
            src = read(ops[1])
            stmt = src and write_or_none(ops[0], src)
            return [stmt] if stmt else fallback()

        if op == "PUSH":
            src = read(ops[0])
            return [f"stack.append({src})"] if src else fallback()

        if op == "POP":
            stmt = write_or_none(ops[0], "stack.pop()")
            return [stmt] if stmt else fallback()

        if op == "ALLOCTEMPS":
            count = ops[0][1]
            lines = ["m.tp = _tp = len(stack)"]
            self._tp_ok = True
            if count:
                lines.append(f"stack.extend({konst((NIL,) * count)})")
            return lines

        if op == "NOP":
            return []

        if op == "HALT":
            return ["m._halted = True", "return"]

        if op == "JMP":
            return self._goto(self.code.resolve_label(ops[0][1]),
                              index=index)

        if op in ("JUMPNIL", "JUMPNNIL"):
            src = read(ops[0])
            if src is None:
                return self._terminator_fallback(instruction, index)
            target = self.code.resolve_label(ops[1][1])
            test = "is" if op == "JUMPNIL" else "is not"
            return ([f"_x = {src}",
                     "if type(_x) is PdlNumber:",
                     "    _x = _x.deref()",
                     f"if _x {test} NIL:"]
                    + ["    " + line
                       for line in self._goto(target, index=index)]
                    + self._goto(index + 1, index=index, taken=False))

        if op == "CMPBR":
            rel = ops[0][1]
            relation = rel if isinstance(rel, str) else rel.name
            pyop = _PY_RELATION.get(relation)
            a, b = read(ops[1]), read(ops[2])
            if pyop is None or a is None or b is None:
                return self._terminator_fallback(instruction, index)
            target = self.code.resolve_label(ops[3][1])
            lines = [f"_x = {a}", f"_y = {b}"]
            if not _imm_raw(ops[1]):
                lines += [f"if not {_is_raw('_x')}:",
                          "    _need(_x, 'CMPBR')"]
            if not _imm_raw(ops[2]):
                lines += [f"if not {_is_raw('_y')}:",
                          "    _need(_y, 'CMPBR')"]
            return (lines
                    + [f"if _x {pyop} _y:"]
                    + ["    " + line
                       for line in self._goto(target, index=index)]
                    + self._goto(index + 1, index=index, taken=False))

        if op == "EQLBR":
            a, b = read(ops[0]), read(ops[1])
            if a is None or b is None:
                return self._terminator_fallback(instruction, index)
            target = self.code.resolve_label(ops[2][1])
            return ([f"if _eql(_ptl({a}), _ptl({b})):"]
                    + ["    " + line
                       for line in self._goto(target, index=index)]
                    + self._goto(index + 1, index=index, taken=False))

        if op == "UNBOX":
            src = read(ops[1])
            w = src and write_or_none(ops[0], "_x.value")
            if not w:
                return fallback()
            if ops[1][0] == "imm" and type(ops[1][1]) is int:
                return [write_or_none(ops[0], repr(ops[1][1]))]
            return [f"_x = {src}",
                    "_t = type(_x)",
                    "if _t is HeapNumber:",
                    f"    {write_or_none(ops[0], '_x.value')}",
                    "elif _t is PdlNumber and _x.machine is m "
                    "and _x.frame_serial in m._live_serials:",
                    f"    {write_or_none(ops[0], 'stack[_x.address]')}",
                    "elif _t is int:",
                    f"    {write_or_none(ops[0], '_x')}",
                    "else:",
                    f"    {write_or_none(ops[0], '_unbox_slow(_x)')}"]

        if op == "BOXF":
            src = read(ops[1])
            if not (src and write_or_none(ops[0], "_x")):
                return fallback()
            if _imm_raw(ops[1]):
                value = ops[1][1]
                boxed = (repr(value) if type(value) is int
                         else f"m.heap.allocate_number({value!r})")
                return [write_or_none(ops[0], boxed)]
            return [f"_x = {src}",
                    "_t = type(_x)",
                    "if _t is int:",
                    f"    {write_or_none(ops[0], '_x')}",
                    "elif _t is float or _t is complex:",
                    f"    {write_or_none(ops[0], 'm.heap.allocate_number(_x)')}",
                    "else:",
                    f"    {write_or_none(ops[0], '_boxf_slow(m, _x)')}"]

        if op == "PDLBOX":
            src = read(ops[2])
            slot = ops[1]
            if not (src and slot[0] == "temp"
                    and write_or_none(ops[0], "_x")):
                return fallback()
            offset = slot[1]
            slot_ref = self._temp_ref(offset)
            pdl = f"PdlNumber(m, stack[m.fp].serial, _tp + {offset})"
            return [f"_x = {src}",
                    "_t = type(_x)",
                    "if _t is int:",
                    f"    {write_or_none(ops[0], '_x')}",
                    "elif _t is float or _t is complex:",
                    f"    {slot_ref} = _x",
                    f"    {write_or_none(ops[0], pdl)}",
                    "else:",
                    f"    {self._fallback_call(instruction, index)}"]

        if op == "CERTIFY":
            src = read(ops[1])
            stmt = src and write_or_none(ops[0], "_x")
            if not stmt:
                return fallback()
            return [f"_x = {src}",
                    "if type(_x) is PdlNumber:",
                    "    _x = m._certify(_x)",
                    stmt]

        if op in RAW_BINARY_OPS:
            a, b = read(ops[1]), read(ops[2])
            if not (a and b and write_or_none(ops[0], "_x")):
                return fallback()
            fast = _INLINE_BINARY.get(op, f"_rawbin({op!r}, _x, _y)")
            slow = f"_rawbin_checked({op!r}, _x, _y)"
            # Immediates are known raw at translation time, so only the
            # operands whose type is decided at run time get checked.
            checks = []
            if not _imm_raw(ops[1]):
                checks.append(_is_raw("_x"))
            if not _imm_raw(ops[2]):
                checks.append(_is_raw("_y"))
            lines = [f"_x = {a}", f"_y = {b}"]
            if not checks:
                return lines + [write_or_none(ops[0], fast)]
            return lines + [f"if {' and '.join(checks)}:",
                            f"    {write_or_none(ops[0], fast)}",
                            "else:",
                            f"    {write_or_none(ops[0], slow)}"]

        if op in RAW_UNARY_OPS:
            src = read(ops[1])
            if not (src and write_or_none(ops[0], "_x")):
                return fallback()
            fast = _INLINE_UNARY.get(op, f"_rawun({op!r}, _x)")
            slow = f"_rawun_checked({op!r}, _x)"
            if _imm_raw(ops[1]):
                return [f"_x = {src}", write_or_none(ops[0], fast)]
            return [f"_x = {src}",
                    f"if {_is_raw('_x')}:",
                    f"    {write_or_none(ops[0], fast)}",
                    "else:",
                    f"    {write_or_none(ops[0], slow)}"]

        if op == "ARGEXPAND":
            # Mirrors Machine._op_argexpand: slide the frame record up to
            # make room for the missing optional-parameter slots.  Moves
            # fp/tp, so any hoisted base addresses die here.
            total = ops[0][1]
            self._tp_ok = False
            self._fb_ok = False
            return ["_rec = stack[m.fp]",
                    f"_missing = {total} - _rec.nargs",
                    "if _missing > 0:",
                    "    _base = m.fp - _rec.nargs",
                    "    _args = stack[_base:m.fp]",
                    "    del stack[_base:m.fp + 1]",
                    "    stack.extend(_args)",
                    f"    stack.extend([NIL] * _missing)",
                    f"    _rec.nargs = {total}",
                    "    stack.append(_rec)",
                    "    _fp = len(stack) - 1",
                    "    m.fp = _fp",
                    "    m.tp = _fp + 1"]

        if op == "ARGCHECK":
            low, high = ops[0][1], ops[1][1]
            condition = f"_n < {low}"
            if high is not None:
                condition += f" or _n > {high}"
            return ["_n = regs[5]",
                    f"if {condition}:",
                    f"    {self._fallback_call(instruction, index)}"]

        if op == "ARGDISPATCH":
            lines = ["_n = regs[5]"]
            for count, label in ops[0][1]:
                target = self.code.resolve_label(label)
                if count is None:
                    lines += self._goto(target, index=index)
                    return lines
                lines += ([f"if _n == {count}:"]
                          + ["    " + line
                             for line in self._goto(target, index=index)])
            # No arm matched: the handler raises the arity error.
            lines += [self._fallback_call(instruction, index), "return"]
            return lines

        if op in ("CALL", "KCALL"):
            target, nargs = ops[0], ops[1][1]
            push = self._push_frame_lines(index + 1, nargs)
            if target[0] == "global":
                kname = konst(target[1])
                # Per-call-site inline cache [callee code, entry block]:
                # monomorphic call sites skip the dispatch loop's lookup.
                # Identity-checked, so a redefined function misses and
                # re-resolves; ns (and thus the cell) is per machine.
                cell = f"_cs{index}"
                self.ns[cell] = [None, None]
                if self.telemetry:
                    tel = self._tel_ref()
                    site = konst(f"{self.code.name}:{index}->{target[1]}")
                    probe_hit = [f"    {tel}.ic_hit({site})"]
                    probe_miss = [f"{tel}.ic_miss({site},"
                                  f" {cell}[0] is not None)"]
                else:
                    probe_hit = probe_miss = []
                return ([f"_c = m.program.functions.get({kname})",
                         "if _c is None:",
                         f"    m.pc = {index + 1}",
                         f"    {self._fallback_call(instruction, index)}"]
                        + ["    " + line
                           for line in self._flush_check(index)]
                        + ["    return"]
                        + push
                        # Entering another CodeObject always transfers:
                        # charge the flush once, IC hit and miss alike.
                        + self._flush_charge()
                        + ["m.code = _c",
                           "m.pc = 0",
                           f"if _c is {cell}[0]:"]
                        + probe_hit
                        + [f"    return {cell}[1]"]
                        + probe_miss
                        + ["_native = m._native_code_for(_c)",
                           f"{cell}[0] = _c",
                           f"{cell}[1] = _native.blocks.get(0)",
                           f"return {cell}[1]"])
            if target[0] == "label":
                entry = self.code.resolve_label(target[1])
                return push + self._goto(entry, index=index)
            return self._terminator_fallback(instruction, index)

        if op == "TAILCALL":
            target, nargs = ops[0], ops[1][1]
            high_water = ["_s = len(stack)",
                          "if _s > m.max_stack:",
                          "    m.max_stack = _s"]
            if target[0] == "global":
                kname = konst(target[1])
                return ([f"_c = m.program.functions.get({kname})",
                         "if _c is None:",
                         f"    m.pc = {index + 1}",
                         f"    {self._fallback_call(instruction, index)}"]
                        + ["    " + line
                           for line in self._flush_check(index)]
                        + ["    return"]
                        + high_water
                        + [f"m._replace_frame({nargs})",
                           "m.cp = None"]
                        + self._flush_charge()
                        + ["m.code = _c",
                           "m.pc = 0",
                           "return"])
            if target[0] == "label":
                entry = self.code.resolve_label(target[1])
                return (high_water
                        + [f"m._replace_frame({nargs})",
                           "m.cp = None"]
                        + self._goto(entry, index=index))
            return self._terminator_fallback(instruction, index)

        if op == "RET":
            src = read(ops[0])
            if src is None:
                return self._terminator_fallback(instruction, index)
            return [f"_v = {src}",
                    "if type(_v) is PdlNumber:",
                    "    _v = m._certify(_v)",
                    "_s = len(stack)",
                    "if _s > m.max_stack:",
                    "    m.max_stack = _s",
                    "_rec = stack[m.fp]",
                    "m._live_serials.discard(_rec.serial)",
                    "del stack[m.fp - _rec.nargs:]",
                    "m.fp = _rec.old_fp",
                    "m.tp = _rec.old_tp",
                    "m.cp = _rec.old_cp",
                    "_c = _rec.ret_code",
                    "if _c is None:",
                    "    m.result = _v",
                    "    m._halted = True",
                    "    return",
                    "m.code = _c",
                    "m.pc = _rec.ret_pc"] \
                + self._flush_check(index) \
                + ["stack.append(_v)",
                   # ret_block is this machine's continuation block for
                   # (ret_code, ret_pc) when the frame was pushed by
                   # generated code, None when the simulator pushed it
                   # (the dispatch loop then resolves m.code/m.pc).
                   "return _rec.ret_block"]

        if op == "GENERIC":
            name = ops[0][1]
            if name is sym("throw"):
                return self._terminator_fallback(instruction, index)
            primitive = lookup_primitive(name)
            if primitive is None:
                return fallback()
            dst, srcs = ops[1], ops[2:]
            lines: List[str] = []
            argnames = []
            for j, operand in enumerate(srcs):
                src = read(operand)
                if src is None:
                    return fallback()
                a = f"_a{j}"
                argnames.append(a)
                lines.append(f"{a} = {src}")
                if operand[0] == "imm" and not isinstance(
                        operand[1], (HeapNumber, PdlNumber)):
                    continue  # translation-time constant: nothing to unwrap
                lines.append(f"_t = type({a})")
                if primitive.safe:
                    lines += ["if _t is HeapNumber:",
                              f"    {a} = {a}.value",
                              "elif _t is PdlNumber:",
                              f"    {a} = {a}.deref()"]
                else:
                    lines += ["if _t is PdlNumber:",
                              f"    {a} = m._certify({a}).value",
                              "elif _t is HeapNumber:",
                              f"    {a} = {a}.value"]
            if primitive.cycles:
                lines.append(f"m.cycles += {primitive.cycles}")
            count = len(argnames)
            if (primitive.min_args <= count
                    and (primitive.max_args is None
                         or count <= primitive.max_args)):
                # Arity is statically valid: call the implementation
                # directly, skipping Primitive.apply's per-call check.
                call = f"{konst(primitive.fn)}({', '.join(argnames)})"
            else:
                args = "(" + ", ".join(argnames) \
                    + ("," if count == 1 else "") + ")"
                call = f"{konst(primitive)}.apply({args})"
            arith = _GENERIC_FAST2_ARITH.get(primitive.name)
            cmp = _GENERIC_FAST2_CMP.get(primitive.name)
            fast1 = _GENERIC_FAST1.get(primitive.name)
            if count == 2 and (arith or cmp):
                guard = ("(type(_a0) is int or type(_a0) is float)"
                         " and (type(_a1) is int or type(_a1) is float)")
                expr = (f"_a0 {arith} _a1" if arith
                        else f"T if _a0 {cmp} _a1 else NIL")
                lines += [f"if {guard}:",
                          f"    _r = {expr}",
                          "else:",
                          f"    _r = {call}"]
            elif count == 1 and fast1:
                lines += ["if type(_a0) is int or type(_a0) is float:",
                          f"    _r = {fast1}",
                          "else:",
                          f"    _r = {call}"]
            else:
                lines.append(f"_r = {call}")
            if primitive.allocates:
                lines.append("m.heap.adopt(_r)")
            lines.append("_t = type(_r)")
            lines.append("if _t is float or _t is complex:")
            lines.append("    _r = m.heap.allocate_number(_r)")
            stmt = write_or_none(dst, "_r")
            if stmt is None:
                return fallback()
            lines.append(stmt)
            if primitive.cycles:
                # The inline ``m.cycles += primitive.cycles`` is a
                # statically-known per-execution extra: telemetry folds it
                # into the block's fast-path split.
                self._inline_extra[index] = primitive.cycles
            return lines

        if _is_terminator(instruction):
            # CALLF / TAILCALLF / APPLYF / LOCK / GENERIC-throw and any
            # terminator shape the fast paths above declined.
            return self._terminator_fallback(instruction, index)

        return fallback()

    def _terminator_fallback(self, instruction: Instruction,
                             index: int) -> List[str]:
        # The handler expects the simulator's convention: pc already
        # advanced past the instruction (CALLF saves it as the return
        # address, LOCK spins by decrementing it, throw overwrites it).
        # Whether it transferred (closure call, throw, spin) or fell
        # through (primitive CALLF, halt) is only known afterwards, so
        # the pipelined model re-runs the simulator's transfer test here.
        self._fallback_main.add(index)
        return ([f"m.pc = {index + 1}",
                 self._fallback_call(instruction, index)]
                + self._flush_check(index)
                + ["return"])

    # -- whole-code translation ---------------------------------------------

    def translate(self) -> NativeCode:
        instructions = self.code.instructions
        n = len(instructions)
        starts = self.leaders()
        module: List[str] = []
        info = []
        tprof = self._tprof
        for position, start in enumerate(starts):
            end = starts[position + 1] if position + 1 < len(starts) else n
            count = end - start
            static = sum(self.costs.get(instructions[k].opcode, 1)
                         for k in range(start, end))
            # Pipelined model: the block's data-hazard and structural
            # stalls are static properties of its straight-line body
            # (mid-block instructions never transfer), so they are folded
            # into the prologue charge exactly as the simulator would
            # charge them one instruction at a time.
            if tprof is not None:
                stall_data, stall_structural = tprof.block_stalls(start, end)
            else:
                stall_data = stall_structural = 0
            static += stall_data + stall_structural
            fname = f"_blk_{start}"
            module.append(f"def {fname}(m):")
            self._tp_ok = False
            self._fb_ok = False
            self._tel_ok = False
            self._block_start = start
            core: List[str] = []
            for k in range(start, end):
                core.extend(self.emit(k))
            if not _is_terminator(instructions[end - 1]):
                core += self._goto(end, index=end - 1, taken=False)
            body = []
            if any("stack" in line for line in core):
                body.append("stack = m.stack")
            if any("regs" in line for line in core):
                body.append("regs = m.regs")
            body += [f"_ni = m.instructions + {count}",
                     "m.instructions = _ni",
                     "if _ni > m.fuel:",
                     "    raise MachineError('instruction budget"
                     " exhausted')"]
            if static:
                body.append(f"m.cycles += {static}")
            if stall_data:
                body.append(f"m.stall_data += {stall_data}")
            if stall_structural:
                body.append(f"m.stall_structural += {stall_structural}")
            body += core
            for line in body:
                module.append("    " + line)
            module.append("")
            opcodes = Counter(instructions[k].opcode
                              for k in range(start, end))
            attributions = [(k, instructions[k].opcode,
                             self.costs.get(instructions[k].opcode, 1)
                             + (tprof.structural[k]
                                + (tprof.pair[k] if k > start else 0)
                                if tprof is not None else 0))
                            for k in range(start, end)]
            # Telemetry's static split, decided by how each instruction
            # was just emitted: handler-call main paths are fallback,
            # everything else (including guarded inline slow helpers) is
            # fast path with any statically-known inline extras folded in.
            tel_fast: Dict[str, int] = {}
            tel_fast_counts: Dict[str, int] = {}
            tel_fallback: Dict[str, int] = {}
            tel_fallback_counts: Dict[str, int] = {}
            for k in range(start, end):
                opcode = instructions[k].opcode
                cost = self.costs.get(opcode, 1)
                if k in self._fallback_main:
                    tel_fallback[opcode] = tel_fallback.get(opcode, 0) + cost
                    tel_fallback_counts[opcode] = \
                        tel_fallback_counts.get(opcode, 0) + 1
                else:
                    tel_fast[opcode] = tel_fast.get(opcode, 0) + cost \
                        + self._inline_extra.get(k, 0)
                    tel_fast_counts[opcode] = \
                        tel_fast_counts.get(opcode, 0) + 1
            info.append((fname, start, count, static, dict(opcodes),
                         attributions, tel_fast, tel_fast_counts,
                         tel_fallback, tel_fallback_counts))
        source = "\n".join(module)
        exec(compile(source, f"<native:{self.code.name}>", "exec"), self.ns)
        blocks = {start: NativeBlock(self.ns[fname], start, count, static,
                                     opcodes, attributions,
                                     f"{self.code.name}:{start}",
                                     tel_fast, tel_fast_counts,
                                     tel_fallback, tel_fallback_counts)
                  for fname, start, count, static, opcodes, attributions,
                  tel_fast, tel_fast_counts, tel_fallback,
                  tel_fallback_counts in info}
        # Static chaining: ``return B<leader>`` in generated code resolves
        # to the target NativeBlock through the module namespace.
        for start, block in blocks.items():
            self.ns[f"B{start}"] = block
        return NativeCode(self.code, blocks, source)


def translate(code: CodeObject,
              cycle_costs: Optional[Dict[str, int]] = None,
              telemetry: bool = False,
              pipeline: Optional[PipelineDescription] = None) -> NativeCode:
    """Translate *code* into native blocks under *cycle_costs* (default:
    the S-1 table).  Pure: the CodeObject is never mutated, so one
    translation serves every machine with the same cost table.  With
    *telemetry* the generated code carries inline-cache probes and
    fallback-site cycle reporting (reading ``m.telemetry`` at run time),
    so instrumented and plain translations must not share a cache --
    ``Machine.enable_telemetry`` drops its native cache for this reason.
    A *pipeline* bakes that timing model's hazard-stall charges into the
    generated blocks (``Machine.set_timing`` drops the cache likewise).
    """
    return _Translator(code, cycle_costs, telemetry, pipeline).translate()
