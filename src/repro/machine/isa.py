"""Instruction set of the simulated S-1-like machine.

The code generator emits "parenthesized assembly" -- a list of
:class:`Instruction` objects per compiled function (:class:`CodeObject`).
The set mirrors what the paper's Table 4 listing uses, rationalized:

Data movement / coercion
    MOV, UNBOX (pointer->raw, with type check), BOXF (raw->heap box),
    PDLBOX (raw->stack scratch slot, result is an unsafe pdl pointer),
    CERTIFY (unsafe->safe pointer, copying to the heap if needed)
Raw arithmetic (register/stack words holding raw machine numbers)
    ADD SUB MULT DIV MOD REM NEG            (integers)
    FADD FSUB FMULT FDIV FMAX FMIN FNEG     (floats / complexes)
    FSIN FCOS (argument in *cycles*, like the S-1's instructions)
    FSINR FCOSR (radians), FSQRT FABS FEXP FLOG FATAN FLT FIX
Control
    JMP, JUMPNIL, JUMPNNIL, CMPBR (raw compare+branch), EQLBR
    (pointer eql+branch), ARGCHECK, ARGDISPATCH, NOP, RET
Calls
    PUSH, CALL (global or label; full linkage with arity checking),
    KCALL (fast linkage: known call sites, no checks), CALLF (computed
    function value), TAILCALL / TAILCALLF (frame-replacing jumps),
    ALLOCTEMPS (prologue)
Generic operations (out-of-line runtime routines)
    GENERIC <primitive> -- the "LISP pointer world" operations: generic
    arithmetic on boxed values, list structure, predicates.  Unsafe
    generics certify their pointer arguments first.
Closures / environments
    CLOSURE, ENVREF, MKCELL, CELLREF, CELLSET
Special variables (deep binding, Section 4.4)
    SPECBIND, SPECUNBIND, SPECLOOKUP (deep search, returns a cell),
    SPECREF, SPECSET, SPECGREF (global read without caching)

Operands are tagged tuples:
    ("reg", n) ("temp", off) ("frame", i) ("imm", value) ("label", name)
    ("global", symbol) ("env", idx) ("name", symbol)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

Operand = Tuple[str, Any]


def reg(index: int) -> Operand:
    return ("reg", index)


def temp(offset: int) -> Operand:
    return ("temp", offset)


def frame_arg(index: int) -> Operand:
    return ("frame", index)


def imm(value: Any) -> Operand:
    return ("imm", value)


def label_ref(name: str) -> Operand:
    return ("label", name)


def global_ref(symbol: Any) -> Operand:
    return ("global", symbol)


def env_slot(index: int) -> Operand:
    return ("env", index)


def name_ref(symbol: Any) -> Operand:
    return ("name", symbol)


@dataclass
class Instruction:
    opcode: str
    operands: Tuple[Operand, ...] = ()
    comment: Optional[str] = None
    #: 1-based source line this instruction was compiled from (None when
    #: the originating form carried no reader position, e.g. the prelude
    #: or optimizer-introduced code).
    line: Optional[int] = None

    def render(self, register_names: Optional[Dict[int, str]] = None) -> str:
        """Render one instruction; *register_names* selects a target's
        register naming (default: the S-1 names)."""
        parts = [f"({self.opcode}"]
        for operand in self.operands:
            parts.append(" " + _render_operand(operand, register_names))
        parts.append(")")
        text = "".join(parts)
        if self.comment:
            text = f"{text:<48}; {self.comment}"
        return text


def _render_operand(operand: Operand,
                    register_names: Optional[Dict[int, str]] = None) -> str:
    kind, value = operand
    if kind == "reg":
        from ..target.registers import register_name

        return register_name(value, register_names)
    if kind == "temp":
        return f"(TP {value})"
    if kind == "frame":
        return f"(FP {value})"
    if kind == "imm":
        if isinstance(value, list):  # dispatch tables and the like
            entries = " ".join(f"({n} {label})" for n, label in value)
            return f"(DATA {entries})"
        from ..reader.printer import write_to_string

        return f"(? {write_to_string(value)})"
    if kind == "label":
        return str(value)
    if kind == "global":
        return f"(SQ {value})"
    if kind == "env":
        return f"(CP {value})"
    if kind == "name":
        return f"'{value}"
    return repr(operand)  # pragma: no cover


# Abstract cycle costs (shape-level performance model).
CYCLES: Dict[str, int] = {
    "MOV": 1, "UNBOX": 1, "BOXF": 5, "PDLBOX": 1, "CERTIFY": 1,
    "ADD": 1, "SUB": 1, "MULT": 3, "DIV": 6, "MOD": 6, "REM": 6, "NEG": 1,
    "FADD": 1, "FSUB": 1, "FMULT": 1, "FDIV": 4, "FMAX": 1, "FMIN": 1,
    "FNEG": 1, "FSIN": 8, "FCOS": 8, "FSINR": 10, "FCOSR": 10,
    "FSQRT": 8, "FABS": 1, "FEXP": 8, "FLOG": 8, "FATAN": 8,
    "FLT": 1, "FIX": 1,
    "JMP": 1, "JUMPNIL": 1, "JUMPNNIL": 1, "CMPBR": 1, "EQLBR": 1,
    "ARGCHECK": 1, "ARGDISPATCH": 2, "NOP": 0,
    "PUSH": 1, "CALL": 4, "KCALL": 2, "CALLF": 5, "TAILCALL": 3,
    "TAILCALLF": 4, "APPLYF": 6, "RET": 2, "ALLOCTEMPS": 1,
    "ARGEXPAND": 1, "RESTCOLLECT": 3, "POP": 1, "GFUNC": 1,
    "CATCHPUSH": 3, "CATCHPOP": 1, "GC": 50,
    "GENERIC": 2,  # plus the primitive's own cycle count
    "CLOSURE": 6, "ENVREF": 1, "MKCELL": 4, "CELLREF": 1, "CELLSET": 1,
    "SPECBIND": 2, "SPECUNBIND": 1, "SPECLOOKUP": 3, "SPECREF": 1,
    "SPECSET": 1, "SPECGREF": 3,
    "VDOT": 2, "VSUM": 2, "VADD": 2, "VSCALE": 2,  # plus length/4 dynamic
    "LOCK": 2, "UNLOCK": 1,
    "HALT": 0,
}

RAW_BINARY_OPS = {
    "ADD", "SUB", "MULT", "DIV", "MOD", "REM",
    "FADD", "FSUB", "FMULT", "FDIV", "FMAX", "FMIN", "FATAN",
}

RAW_UNARY_OPS = {
    "NEG", "FNEG", "FSIN", "FCOS", "FSINR", "FCOSR", "FSQRT", "FABS",
    "FEXP", "FLOG", "FLT", "FIX",
}


@dataclass
class CodeObject:
    """One compiled function: a named, label-resolved instruction list."""

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    n_temps: int = 0
    arity_min: int = 0
    arity_max: Optional[int] = 0
    source: Optional[str] = None
    target: str = "s1"
    #: instruction index -> 1-based source line (profiler attribution).
    #: Derived from ``Instruction.line``; sparse -- indices whose
    #: originating form had no reader position are absent.
    line_map: Dict[int, int] = field(default_factory=dict)
    #: File the function was read from, when known (reader positions).
    source_file: Optional[str] = None

    def rebuild_line_map(self) -> None:
        """Recompute ``line_map`` from the instructions' ``line`` fields
        (callers that reorder or rewrite instructions run this last)."""
        self.line_map = {
            index: instruction.line
            for index, instruction in enumerate(self.instructions)
            if instruction.line is not None
        }

    def resolve_label(self, name: str) -> int:
        if name not in self.labels:
            raise KeyError(f"undefined label {name} in {self.name}")
        return self.labels[name]

    def listing(self) -> str:
        """Render in the paper's parenthesized-assembly style, using the
        compilation target's register naming."""
        from ..target.machines import get_target

        register_names = dict(get_target(self.target).register_names)
        lines = [f";;; {self.name}  (temps: {self.n_temps})"]
        index_to_labels: Dict[int, List[str]] = {}
        for label, index in self.labels.items():
            index_to_labels.setdefault(index, []).append(label)
        for index, instruction in enumerate(self.instructions):
            for label in sorted(index_to_labels.get(index, [])):
                lines.append(f"{label}:")
            lines.append("        " + instruction.render(register_names))
        for label in sorted(index_to_labels.get(len(self.instructions), [])):
            lines.append(f"{label}:")
        return "\n".join(lines)


@dataclass
class Program:
    """A set of compiled functions plus compile-time metadata."""

    functions: Dict[Any, CodeObject] = field(default_factory=dict)

    def add(self, symbol: Any, code: CodeObject) -> None:
        self.functions[symbol] = code

    def get(self, symbol: Any) -> CodeObject:
        if symbol not in self.functions:
            raise KeyError(f"undefined function {symbol}")
        return self.functions[symbol]
