"""The simulated S-1 CPU and runtime system.

Executes :class:`~repro.machine.isa.CodeObject` programs.  The machine is
*strict about representations*: a raw-arithmetic instruction traps on a
pointer operand and vice versa, so bugs in the compiler's representation
analysis surface as traps here rather than wrong answers.

Statistics kept (these are the measured quantities of every performance
experiment): instructions executed, abstract cycles, per-opcode counts,
heap allocations by class (via :class:`~repro.machine.heap.Heap`), pdl
certifications, special-variable search work, calls, and the stack
high-water mark (the tail-call experiments watch this one).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..datum import NIL, T, from_list
from ..datum.symbols import Symbol, sym
from ..errors import LispError, MachineError, WrongNumberOfArgumentsError
from ..interp.environment import DeepBindingStack
from ..primitives import Primitive, lookup_primitive
from ..telemetry import MachineTelemetry
from .heap import Heap
from .isa import CYCLES, CodeObject, Instruction, Program, RAW_BINARY_OPS, RAW_UNARY_OPS
from .timing import (
    DEFAULT_PIPELINE,
    PipelineDescription,
    TIMINGS,
    TimingProfile,
    analyze as analyze_timing,
)
from .values import (
    Cell,
    Closure,
    HeapNumber,
    PdlNumber,
    PrimitiveFn,
    is_raw_number,
    lisp_is_true,
    pointer_to_lisp,
)

import math


class _Unbound:
    def __repr__(self) -> str:  # pragma: no cover
        return "#<unbound>"


UNBOUND = _Unbound()


@dataclass
class FrameRecord:
    ret_code: Optional[CodeObject]
    ret_pc: int
    old_fp: int
    old_tp: int
    old_cp: Optional[List[Any]]
    nargs: int
    serial: int
    #: Native tier only: the caller's continuation NativeBlock at
    #: (ret_code, ret_pc), stamped by generated CALL code so RET can
    #: bypass the dispatch loop's block lookup.  Always None for frames
    #: pushed by the simulator; ignored outside the native tier.
    ret_block: Any = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"#<frame nargs={self.nargs} serial={self.serial}>"


@dataclass
class CatchRecord:
    tag: Any
    stack_height: int
    fp: int
    tp: int
    cp: Optional[List[Any]]
    code: CodeObject
    target_pc: int
    specials_depth: int
    frame_serials: frozenset


class MachineProfile:
    """Sampling-free exact execution profile.

    Attribution happens at instruction granularity in
    :meth:`Machine.step_instruction`: every executed instruction's full
    cycle cost -- the static table cost *plus* whatever the handler added
    dynamically (GENERIC primitive costs, vector length/4 costs) -- is
    charged to its opcode, its containing function, and (via the
    ``CodeObject.line_map`` the code generator emits) its source line.
    The paper's cycle model (Table 4 discussion) is thus measurable
    per-line, not just in aggregate.
    """

    def __init__(self) -> None:
        self.opcode_cycles: Counter = Counter()
        self.opcode_counts: Counter = Counter()
        self.function_cycles: Counter = Counter()
        self.function_instructions: Counter = Counter()
        #: (file, line) -> cycles / instruction counts.
        self.line_cycles: Counter = Counter()
        self.line_instructions: Counter = Counter()
        self.total_instructions = 0
        self.total_cycles = 0

    def attribute(self, code: CodeObject, index: int, opcode: str,
                  cycles: int) -> None:
        self.total_instructions += 1
        self.total_cycles += cycles
        self.opcode_counts[opcode] += 1
        self.opcode_cycles[opcode] += cycles
        self.function_instructions[code.name] += 1
        self.function_cycles[code.name] += cycles
        line = code.line_map.get(index)
        if line is not None:
            key = (code.source_file or "<input>", line)
            self.line_instructions[key] += 1
            self.line_cycles[key] += cycles

    def report(self, top: int = 20) -> str:
        """Human-readable tables: opcodes, functions, source lines."""
        if not self.total_instructions:
            return "(no instructions profiled)"
        lines = [f"Profile: {self.total_instructions} instructions, "
                 f"{self.total_cycles} cycles"]
        lines.append("Per-opcode cycles:")
        lines.append("   cycles    count  opcode")
        for opcode, cycles in self.opcode_cycles.most_common(top):
            lines.append(f"  {cycles:7d}  {self.opcode_counts[opcode]:7d}"
                         f"  {opcode}")
        lines.append("Per-function cycles:")
        lines.append("   cycles   instrs  function")
        for name, cycles in self.function_cycles.most_common(top):
            lines.append(f"  {cycles:7d}  {self.function_instructions[name]:7d}"
                         f"  {name}")
        if self.line_cycles:
            lines.append("Per-source-line cycles:")
            lines.append("   cycles   instrs  location")
            for key, cycles in self.line_cycles.most_common(top):
                file, line = key
                lines.append(f"  {cycles:7d}  {self.line_instructions[key]:7d}"
                             f"  {file}:{line}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "total_instructions": self.total_instructions,
            "total_cycles": self.total_cycles,
            "opcodes": {opcode: {"cycles": cycles,
                                 "count": self.opcode_counts[opcode]}
                        for opcode, cycles in self.opcode_cycles.items()},
            "functions": {name: {"cycles": cycles,
                                 "instructions":
                                     self.function_instructions[name]}
                          for name, cycles in self.function_cycles.items()},
            "lines": [{"file": file, "line": line, "cycles": cycles,
                       "instructions": self.line_instructions[(file, line)]}
                      for (file, line), cycles in sorted(
                          self.line_cycles.items())],
        }


class Machine:
    """One simulated processor plus its runtime state."""

    def __init__(self, program: Program, fuel: int = 50_000_000,
                 gc_threshold: Optional[int] = None,
                 cycle_costs: Optional[Dict[str, int]] = None,
                 tier: str = "simulate",
                 timing: str = "single",
                 pipeline: Optional[PipelineDescription] = None):
        if tier not in ("simulate", "native"):
            raise MachineError(
                f"unknown execution tier {tier!r} "
                "(choose 'simulate' or 'native')")
        if timing not in TIMINGS:
            raise MachineError(
                f"unknown timing model {timing!r} "
                f"(choose one of {', '.join(TIMINGS)})")
        self.program = program
        self.fuel = fuel
        #: Execution engine: "simulate" is the cycle-honest reference
        #: interpreter; "native" runs blocks translated to Python by
        #: repro.machine.native (same results, block-granular accounting).
        self.tier = tier
        #: Timing model: "single" charges the cycle table alone (the
        #: paper's model); "pipelined" additionally charges hazard stalls
        #: from the target's PipelineDescription.  Strictly non-semantic:
        #: only cycles and the stall counters differ.
        self.timing = timing
        # The pipeline tables travel with the machine even under
        # timing="single" so set_timing() can switch models later
        # (the REPL's :timing does).
        self._pipeline_spec = pipeline
        self._pipeline: Optional[PipelineDescription] = None
        if timing == "pipelined":
            self._pipeline = pipeline if pipeline is not None \
                else DEFAULT_PIPELINE
        # id(CodeObject) -> (code, TimingProfile) under the current
        # pipeline, object pinned (same discipline as _native_cache).
        self._timing_cache: Dict[int, Tuple[CodeObject, TimingProfile]] = {}
        # Pipelined-model bookkeeping: the (code, pc) the front end
        # expects next if the last instruction fell through sequentially;
        # anything else means the pipeline was flushed.
        self._pipe_code: Optional[CodeObject] = None
        self._pipe_pc = -1
        #: Per-category hazard stall cycles (already included in
        #: ``cycles``); all zero under timing="single".
        self.stall_data = 0
        self.stall_control = 0
        self.stall_structural = 0
        # Opcode -> cycle cost; a retargeted compiler passes its
        # MachineDescription's table so the cycle counter models that
        # machine (default: the S-1 model).
        self.cycle_costs = CYCLES if cycle_costs is None else cycle_costs
        # Automatic collection: when the live heap exceeds this many
        # objects, a GC runs at the next safe point (None = only explicit
        # GC instructions collect).
        self.gc_threshold = gc_threshold
        self.heap = Heap()
        self.specials = DeepBindingStack()
        self.regs: List[Any] = [NIL] * 32
        self.stack: List[Any] = []
        self.catch_stack: List[CatchRecord] = []
        self.code: Optional[CodeObject] = None
        self.pc = 0
        self.fp = -1
        self.tp = -1
        self.cp: Optional[List[Any]] = None
        self._serial = 0
        self._live_serials: set = set()
        self.result: Any = NIL
        self._halted = False
        # Run-entry snapshot (stack height, fp/tp/cp, catch depth,
        # specials depth) so a fatal trap can restore a usable machine;
        # _poisoned marks "this run died mid-flight".
        self._entry_state: Optional[Tuple] = None
        self._poisoned = False
        # Allocation watermark for the automatic-GC trigger: the check
        # runs only on instructions that actually allocated.
        self._gc_alloc_mark = 0
        # Native tier state: id(CodeObject) -> (code, NativeCode) to pin
        # identity, plus a per-run block-execution counter that stats()
        # lazily folds into opcode_counts.
        self._native_cache: Dict[int, Tuple[CodeObject, Any]] = {}
        self._native_last: Optional[Tuple[CodeObject, Any]] = None
        self._native_counts: Counter = Counter()
        # statistics
        self.instructions = 0
        self.cycles = 0
        self.opcode_counts: Counter = Counter()
        self.call_count = 0
        self.max_stack = 0
        #: Exact execution profile; None (the default) keeps the hot loop
        #: branch-cheap.  See enable_profiling().
        self.profile: Optional[MachineProfile] = None
        #: Execution telemetry (fast-path/fallback attribution, IC/GC/heap
        #: events); None by default for the same reason.  See
        #: enable_telemetry().
        self.telemetry: Optional[MachineTelemetry] = None

    # -- public API -----------------------------------------------------------

    def define_global(self, name: Symbol, value: Any) -> None:
        self.specials.set_global(name, self.lisp_to_pointer(value))

    def run(self, function: Symbol, args: Sequence[Any],
            fuel: Optional[int] = None) -> Any:
        """Call a compiled function with Lisp-datum arguments; returns a
        Lisp datum.  A *fuel* argument bounds this call only: the
        machine's configured budget is restored afterwards (it used to
        stick, silently retuning every later run and skewing
        MultiMachine's stall-budget snapshot)."""
        saved_fuel = self.fuel
        if fuel is not None:
            self.fuel = fuel
        code = self.program.get(function)
        self._entry_state = (len(self.stack), self.fp, self.tp, self.cp,
                             len(self.catch_stack), self.specials.depth())
        self._poisoned = False
        for arg in args:
            self.stack.append(self.lisp_to_pointer(arg))
        self._push_frame(None, 0, len(args))
        self.code = code
        self.pc = 0
        self._halted = False
        self._pipe_code = None  # the pipeline starts a run empty
        telemetry = self.telemetry
        span = None if telemetry is None \
            else telemetry.begin_run(str(function), self)
        try:
            self._execute()
        except Exception:
            # A trap mid-run leaves frames, catch records, and dynamic
            # bindings behind; restore the entry state so the machine stays
            # usable (the REPL reuses one machine across errors).
            self._abort_run()
            raise
        finally:
            self._flush_native_counts()
            self.fuel = saved_fuel
            if span is not None:
                telemetry.end_run(span, self)
        return self.machine_to_lisp(self.result)

    def _abort_run(self) -> None:
        """Restore the entry-state snapshot after a fatal trap and mark
        the machine halted + poisoned: whatever run was in flight is dead
        and must not be rescheduled (multi.py checks ``halted``)."""
        if self._entry_state is not None:
            height, fp, tp, cp, catches, spec_depth = self._entry_state
            del self.stack[height:]
            self.fp, self.tp, self.cp = fp, tp, cp
            del self.catch_stack[catches:]
            self.specials.pop_to(spec_depth)
        self._halted = True
        self._poisoned = True

    @property
    def poisoned(self) -> bool:
        """True when the last start()/run() died on a fatal error (the
        entry state was restored; the result is not meaningful)."""
        return self._poisoned

    def frame_alive(self, serial: int) -> bool:
        return serial in self._live_serials

    # -- profiling -----------------------------------------------------------

    def enable_profiling(self) -> MachineProfile:
        """Switch on exact per-instruction attribution (fresh profile)."""
        self.profile = MachineProfile()
        return self.profile

    def disable_profiling(self) -> Optional[MachineProfile]:
        """Stop profiling; returns the collected profile (if any)."""
        profile, self.profile = self.profile, None
        return profile

    def profile_report(self, top: int = 20) -> str:
        if self.profile is None:
            return "(profiling is not enabled)"
        return self.profile.report(top)

    def profile_data(self) -> Optional[Dict[str, Any]]:
        return None if self.profile is None else self.profile.to_json()

    # -- telemetry -----------------------------------------------------------

    def enable_telemetry(self) -> MachineTelemetry:
        """Switch on execution telemetry (fresh counters).  The native
        cache is dropped: translations made with telemetry on carry
        instrumented inline-cache and fallback sites, so the two modes
        never share generated code."""
        self._flush_native_counts()
        self.telemetry = MachineTelemetry(processor_id=self.processor_id)
        self._native_cache.clear()
        self._native_last = None
        return self.telemetry

    def disable_telemetry(self) -> Optional[MachineTelemetry]:
        """Stop telemetry; returns what was collected (if anything)."""
        telemetry, self.telemetry = self.telemetry, None
        if telemetry is not None:
            self._native_cache.clear()
            self._native_last = None
        return telemetry

    def telemetry_report(self, top: int = 20) -> str:
        if self.telemetry is None:
            return "(telemetry is not enabled)"
        return self.telemetry.report(top)

    def telemetry_data(self) -> Optional[Dict[str, Any]]:
        return None if self.telemetry is None else self.telemetry.to_json()

    # -- timing models -------------------------------------------------------

    def set_timing(self, timing: str,
                   pipeline: Optional[PipelineDescription] = None) -> None:
        """Switch the timing model (the REPL's ``:timing``).  Drops the
        native cache and the timing profiles: native translations bake
        the pipeline's stall charges into the generated blocks, so the
        two models never share generated code."""
        if timing not in TIMINGS:
            raise MachineError(
                f"unknown timing model {timing!r} "
                f"(choose one of {', '.join(TIMINGS)})")
        self._flush_native_counts()
        if pipeline is not None:
            self._pipeline_spec = pipeline
        self.timing = timing
        if timing == "pipelined":
            self._pipeline = self._pipeline_spec \
                if self._pipeline_spec is not None else DEFAULT_PIPELINE
        else:
            self._pipeline = None
        self._timing_cache.clear()
        self._native_cache.clear()
        self._native_last = None
        self._pipe_code = None
        self._pipe_pc = -1

    def stall_cycles(self) -> Dict[str, int]:
        """Hazard stall cycles by category (subset of ``cycles``)."""
        return {
            "data": self.stall_data,
            "control": self.stall_control,
            "structural": self.stall_structural,
        }

    def _timing_profile(self, code: CodeObject) -> TimingProfile:
        cached = self._timing_cache.get(id(code))
        if cached is None or cached[0] is not code:
            cached = (code, analyze_timing(code, self._pipeline))
            self._timing_cache[id(code)] = cached
        return cached[1]

    def stats(self) -> Dict[str, Any]:
        self._flush_native_counts()
        stalls = self.stall_data + self.stall_control + self.stall_structural
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "timing": self.timing,
            #: cycles the single-cycle table model would have charged:
            #: base_cycles + sum(stall_cycles) == cycles always holds.
            "base_cycles": self.cycles - stalls,
            "stall_cycles": self.stall_cycles(),
            "calls": self.call_count,
            "max_stack": self.max_stack,
            "heap_allocations": dict(self.heap.allocations),
            "total_heap_allocations": self.heap.total_allocations(),
            "certifications": self.heap.certifications,
            "special_lookups": self.specials.lookups,
            "special_search_steps": self.specials.search_steps,
            "opcodes": dict(self.opcode_counts),
        }

    # -- value conversion --------------------------------------------------------

    def lisp_to_pointer(self, value: Any) -> Any:
        """Lisp datum -> pointer-world machine word (boxes floats)."""
        if isinstance(value, (float, complex)):
            return self.heap.allocate_number(value)
        return value

    def machine_to_lisp(self, word: Any) -> Any:
        return pointer_to_lisp(word)

    # -- frame helpers -------------------------------------------------------------

    def _push_frame(self, ret_code: Optional[CodeObject], ret_pc: int,
                    nargs: int) -> FrameRecord:
        self._serial += 1
        record = FrameRecord(ret_code, ret_pc, self.fp, self.tp, self.cp,
                             nargs, self._serial)
        self._live_serials.add(self._serial)
        self.stack.append(record)
        self.fp = len(self.stack) - 1
        self.tp = self.fp + 1
        self.regs[5] = nargs  # NARGS register
        self.call_count += 1
        return record

    def _current_record(self) -> FrameRecord:
        record = self.stack[self.fp]
        if not isinstance(record, FrameRecord):  # pragma: no cover
            raise MachineError("corrupt frame")
        return record

    # -- operand access ---------------------------------------------------------------

    def read(self, operand: Tuple[str, Any]) -> Any:
        kind, value = operand
        if kind == "reg":
            return self.regs[value]
        if kind == "temp":
            return self.stack[self.tp + value]
        if kind == "frame":
            record = self._current_record()
            return self.stack[self.fp - record.nargs + value]
        if kind == "imm":
            return value
        if kind == "env":
            if self.cp is None:
                raise MachineError("ENVREF outside a closure")
            return self.cp[value]
        raise MachineError(f"cannot read operand {operand!r}")

    def write(self, operand: Tuple[str, Any], word: Any) -> None:
        kind, value = operand
        if kind == "reg":
            self.regs[value] = word
        elif kind == "temp":
            self.stack[self.tp + value] = word
        elif kind == "frame":
            record = self._current_record()
            self.stack[self.fp - record.nargs + value] = word
        else:
            raise MachineError(f"cannot write operand {operand!r}")

    def _need_raw(self, word: Any, opcode: str) -> Any:
        if is_raw_number(word):
            return word
        raise MachineError(
            f"{opcode}: operand is not a raw machine number: {word!r} "
            "(representation analysis bug?)")

    # -- the execution loop -------------------------------------------------------------

    def _execute(self) -> None:
        if self.tier == "native":
            self._execute_native()
            return
        while not self._halted:
            self.step_instruction()

    def step_instruction(self) -> None:
        """Execute exactly one instruction (the multiprocessor scheduler
        interleaves processors at this granularity)."""
        if self.pc >= len(self.code.instructions):
            raise MachineError(
                f"fell off the end of {self.code.name} at pc={self.pc}")
        instruction = self.code.instructions[self.pc]
        profile = self.profile
        telemetry = self.telemetry
        if profile is not None or telemetry is not None:
            # Snapshot before the base cost: handlers add dynamic cycles
            # (GENERIC primitive costs, vector length costs) and the delta
            # across the whole step must include them.
            profiled_code = self.code
            profiled_index = self.pc
            cycles_before = self.cycles
            if telemetry is not None:
                # The stack walk must happen before the handler runs --
                # a RET pops the very frame records it reads.
                telemetry_stack = telemetry.stack_key(self)
        self.pc += 1
        self.instructions += 1
        if self.instructions > self.fuel:
            raise MachineError("instruction budget exhausted")
        self.opcode_counts[instruction.opcode] += 1
        self.cycles += self.cycle_costs.get(instruction.opcode, 1)
        handler = _DISPATCH.get(instruction.opcode)
        if handler is None:
            raise MachineError(f"bad opcode {instruction.opcode}")
        pipeline = self._pipeline
        if pipeline is None:
            handler(self, instruction)
            stall_delta = 0
        else:
            # Pipelined model: charge this instruction's structural stall,
            # its data-hazard stall if it issued back-to-back after its
            # static predecessor, and a front-end flush if its handler
            # transferred control (code changed or pc != index + 1).  The
            # native tier charges the same three categories -- statically
            # per block plus the identical transfer check at dynamic
            # sites -- so cycles agree exactly between tiers.
            code_before = self.code
            index = self.pc - 1
            timing_profile = self._timing_profile(code_before)
            structural = timing_profile.structural[index]
            data = timing_profile.pair[index] \
                if (self._pipe_code is code_before
                    and self._pipe_pc == index) else 0
            handler(self, instruction)
            if self.code is code_before and self.pc == index + 1:
                control = 0
                self._pipe_code = code_before
                self._pipe_pc = index + 1
            else:
                control = pipeline.flush_cycles
                self._pipe_code = None
            stall_delta = structural + data + control
            if stall_delta:
                self.cycles += stall_delta
                self.stall_data += data
                self.stall_control += control
                self.stall_structural += structural
        if profile is not None:
            profile.attribute(profiled_code, profiled_index,
                              instruction.opcode,
                              self.cycles - cycles_before)
        if telemetry is not None:
            # The simulate tier *is* the handler path: every base cycle is
            # by definition fallback (fast paths only exist natively);
            # hazard stalls are attributed to their own counters so
            # fast + fallback + stalls == cycles stays exact.
            telemetry.attribute_step(instruction.opcode,
                                     self.cycles - cycles_before
                                     - stall_delta,
                                     telemetry_stack)
            if stall_delta:
                telemetry.note_stalls(data, control, structural)
            telemetry.maybe_sample_heap(self.heap)
        if len(self.stack) > self.max_stack:
            self.max_stack = len(self.stack)
        if self.gc_threshold is not None:
            self._maybe_auto_collect()

    def _maybe_auto_collect(self) -> None:
        """Automatic collection, allocation-watermark keyed: the live-set
        check runs whenever the heap has allocated since the last check,
        so a single handler that allocates heavily (RESTCOLLECT, a
        list-building GENERIC) cannot overshoot gc_threshold between the
        old every-64-instructions boundaries."""
        heap = self.heap
        if heap.alloc_counter != self._gc_alloc_mark:
            self._gc_alloc_mark = heap.alloc_counter
            if heap.live_count() > self.gc_threshold:
                self.collect_garbage(reason="watermark")

    # -- the native tier (repro.machine.native) -----------------------------

    def _native_code_for(self, code: CodeObject):
        """The NativeCode for *code*, translating on first use.  Keyed by
        id() (CodeObjects are unhashable) with the object pinned in the
        value so a recycled id cannot alias a dead CodeObject."""
        cached = self._native_cache.get(id(code))
        if cached is None or cached[0] is not code:
            from .native import translate

            cached = (code, translate(code, self.cycle_costs,
                                      telemetry=self.telemetry is not None,
                                      pipeline=self._pipeline))
            self._native_cache[id(code)] = cached
        return cached[1]

    def step_block(self) -> None:
        """Execute one translated basic block (native tier's unit of
        progress: fuel, cycles, GC, and the stack high-water mark are
        all checked at block granularity)."""
        code = self.code
        last = self._native_last
        if last is not None and last[0] is code:
            native = last[1]
        else:
            native = self._native_code_for(code)
            self._native_last = (code, native)
        block = native.blocks.get(self.pc)
        if block is None:
            if self.pc >= len(code.instructions):
                raise MachineError(
                    f"fell off the end of {code.name} at pc={self.pc}")
            raise MachineError(  # pragma: no cover - translator invariant
                f"native tier: pc={self.pc} is not a block leader in "
                f"{code.name}")
        profile = self.profile
        telemetry = self.telemetry
        if profile is None and telemetry is None:
            block.run(self)
        else:
            if telemetry is not None:
                telemetry_stack = telemetry.stack_key(self)
                stalls_before = (self.stall_data, self.stall_control,
                                 self.stall_structural)
            cycles_before = self.cycles
            block.run(self)
            if profile is not None:
                # Block-granular attribution: each instruction gets its
                # static table cost; dynamic extras (GENERIC primitive
                # cycles) are charged to the block's last instruction.
                extra = self.cycles - cycles_before - block.cycles
                for index, opcode, cycles in block.attributions[:-1]:
                    profile.attribute(code, index, opcode, cycles)
                index, opcode, cycles = block.attributions[-1]
                profile.attribute(code, index, opcode, cycles + extra)
            if telemetry is not None:
                # Fast/fallback per-opcode splits are static per block;
                # dynamic extras were already reported per opcode by the
                # instrumented fallback sites inside block.run().  Stall
                # charges land in the machine counters as the generated
                # code runs; mirror this block's deltas into telemetry so
                # conservation (fast + fallback + stalls == cycles) holds.
                stall_data = self.stall_data - stalls_before[0]
                stall_control = self.stall_control - stalls_before[1]
                stall_structural = self.stall_structural - stalls_before[2]
                stall_delta = stall_data + stall_control + stall_structural
                if stall_delta:
                    telemetry.note_stalls(stall_data, stall_control,
                                          stall_structural)
                telemetry.attribute_block(block,
                                          self.cycles - cycles_before
                                          - stall_delta,
                                          telemetry_stack)
                telemetry.maybe_sample_heap(self.heap)
        self._native_counts[block] += 1
        if len(self.stack) > self.max_stack:
            self.max_stack = len(self.stack)
        if self.gc_threshold is not None:
            self._maybe_auto_collect()

    def _execute_native(self) -> None:
        if self.profile is not None or self.telemetry is not None:
            # Profiling wants per-instruction attribution and telemetry
            # wants per-block deltas: take the precise (slower) per-block
            # path.  The chained hot loop below stays instrumentation-free.
            step_block = self.step_block
            while not self._halted:
                step_block()
            self._flush_native_counts()
            return
        # Hot loop: follow statically chained blocks (run() returns the
        # successor NativeBlock for intra-code edges) and fall back to a
        # pc-keyed lookup only at calls/returns/fallbacks.
        counts = self._native_counts
        stack = self.stack
        cache = self._native_cache
        gc_on = self.gc_threshold is not None
        max_stack = self.max_stack
        block = None
        try:
            while True:
                if block is None:
                    # Dynamic transfer (call/return miss, fallback, or
                    # halt).  Halting always surfaces here -- HALT and
                    # the outermost RET both hand back None -- so the
                    # statically/cache-linked fast path never needs to
                    # test _halted.
                    if self._halted:
                        break
                    code = self.code
                    # Straight to the id-keyed cache: a call/return pair
                    # alternates between two CodeObjects, which defeats
                    # the single-entry _native_last used by step_block.
                    entry = cache.get(id(code))
                    if entry is not None and entry[0] is code:
                        native = entry[1]
                    else:
                        native = self._native_code_for(code)
                    block = native.blocks.get(self.pc)
                    if block is None:
                        if self.pc >= len(code.instructions):
                            raise MachineError(
                                f"fell off the end of {code.name} at "
                                f"pc={self.pc}")
                        raise MachineError(  # pragma: no cover - invariant
                            f"native tier: pc={self.pc} is not a block "
                            f"leader in {code.name}")
                nxt = block.run(self)
                counts[block] += 1
                size = len(stack)
                if size > max_stack:
                    max_stack = size
                if gc_on:
                    self._maybe_auto_collect()
                block = nxt
        finally:
            if max_stack > self.max_stack:
                self.max_stack = max_stack
            self._flush_native_counts()

    def _flush_native_counts(self) -> None:
        """Fold per-block execution counters into opcode_counts (the
        native tier bumps one counter per block, not one per opcode)."""
        if not self._native_counts:
            return
        opcode_counts = self.opcode_counts
        for block, runs in self._native_counts.items():
            for opcode, count in block.opcodes.items():
                opcode_counts[opcode] += count * runs
        self._native_counts.clear()

    # -- asynchronous driving (multiprocessor support) ----------------------

    def start(self, function: Symbol, args: Sequence[Any]) -> None:
        """Set up a call without running it; drive with step()/halted.

        Statistics are per start(): instructions, cycles, opcode counts,
        calls, and the stack high-water mark are reset here so two
        sequential start()/step() runs report independent counts (the
        same per-call-leak family multi.py's fuel budgeting works
        around).  run() keeps cumulating across calls -- the REPL's
        :stats is documented as session-cumulative."""
        code = self.program.get(function)
        self.instructions = 0
        self.cycles = 0
        self.opcode_counts = Counter()
        self.call_count = 0
        self.max_stack = 0
        self.stall_data = 0
        self.stall_control = 0
        self.stall_structural = 0
        self._pipe_code = None
        self._native_counts.clear()
        self._poisoned = False
        self._entry_state = (len(self.stack), self.fp, self.tp, self.cp,
                             len(self.catch_stack), self.specials.depth())
        for arg in args:
            self.stack.append(self.lisp_to_pointer(arg))
        self._push_frame(None, 0, len(args))
        self.code = code
        self.pc = 0
        self._halted = False

    @property
    def halted(self) -> bool:
        return self._halted

    def step(self, quantum: int = 1) -> bool:
        """Run up to *quantum* instructions (native tier: whole blocks,
        until at least *quantum* instructions have run); returns True when
        halted.  A fatal error poisons the machine -- halted, entry state
        restored -- so a scheduler that catches the error cannot
        re-schedule a half-stepped run."""
        try:
            if self.tier == "native":
                target = self.instructions + quantum
                while not self._halted and self.instructions < target:
                    self.step_block()
            else:
                for _ in range(quantum):
                    if self._halted:
                        break
                    self.step_instruction()
        except Exception:
            self._abort_run()
            raise
        if self._halted:
            self._flush_native_counts()
        return self._halted

    # -- instruction implementations -----------------------------------------------------

    def _op_mov(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        self.write(dst, self.read(src))

    def _op_unbox(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        word = self.read(src)
        if isinstance(word, HeapNumber):
            self.write(dst, word.value)
        elif isinstance(word, PdlNumber):
            self.write(dst, word.deref())
        elif is_raw_number(word) and isinstance(word, int):
            self.write(dst, word)  # fixnums are immediate
        elif isinstance(word, Fraction):
            self.write(dst, float(word))
        else:
            # The paper: dereferencing is "often preceded by a run-time
            # data-type check" -- a non-number here is the *user's* type
            # error, not a compiler bug.
            from ..errors import WrongTypeError

            raise WrongTypeError(
                f"not a number: {pointer_to_lisp(word)!r}")

    def _op_boxf(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        word = self._need_raw(self.read(src), "BOXF")
        if isinstance(word, int):
            self.write(dst, word)  # immediates need no box
        else:
            self.write(dst, self.heap.allocate_number(word))

    def _op_pdlbox(self, instruction: Instruction) -> None:
        dst, slot, src = instruction.operands
        word = self._need_raw(self.read(src), "PDLBOX")
        if isinstance(word, int):
            self.write(dst, word)
            return
        assert slot[0] == "temp"
        address = self.tp + slot[1]
        self.stack[address] = word
        record = self._current_record()
        self.write(dst, PdlNumber(self, record.serial, address))

    def _op_certify(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        self.write(dst, self._certify(self.read(src)))

    def _certify(self, word: Any) -> Any:
        if isinstance(word, PdlNumber):
            self.heap.certifications += 1
            return self.heap.allocate_number(word.deref())
        return word

    def _op_raw_binary(self, instruction: Instruction) -> None:
        opcode = instruction.opcode
        dst, a_src, b_src = instruction.operands
        a = self._need_raw(self.read(a_src), opcode)
        b = self._need_raw(self.read(b_src), opcode)
        self.write(dst, _raw_binary(opcode, a, b))

    def _op_raw_unary(self, instruction: Instruction) -> None:
        opcode = instruction.opcode
        dst, src = instruction.operands
        value = self._need_raw(self.read(src), opcode)
        self.write(dst, _raw_unary(opcode, value))

    def _op_jmp(self, instruction: Instruction) -> None:
        (label,) = instruction.operands
        self.pc = self.code.resolve_label(label[1])

    def _op_jumpnil(self, instruction: Instruction) -> None:
        src, label = instruction.operands
        if not lisp_is_true(self.read(src)):
            self.pc = self.code.resolve_label(label[1])

    def _op_jumpnnil(self, instruction: Instruction) -> None:
        src, label = instruction.operands
        if lisp_is_true(self.read(src)):
            self.pc = self.code.resolve_label(label[1])

    _RELATIONS = {
        "lt": lambda a, b: a < b, "le": lambda a, b: a <= b,
        "gt": lambda a, b: a > b, "ge": lambda a, b: a >= b,
        "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
    }

    def _op_cmpbr(self, instruction: Instruction) -> None:
        rel, a_src, b_src, label = instruction.operands
        a = self._need_raw(self.read(a_src), "CMPBR")
        b = self._need_raw(self.read(b_src), "CMPBR")
        relation = rel[1] if isinstance(rel[1], str) else rel[1].name
        if self._RELATIONS[relation](a, b):
            self.pc = self.code.resolve_label(label[1])

    def _op_eqlbr(self, instruction: Instruction) -> None:
        from ..datum.numbers import lisp_eql

        a_src, b_src, label = instruction.operands
        a = pointer_to_lisp(self.read(a_src))
        b = pointer_to_lisp(self.read(b_src))
        if lisp_eql(a, b):
            self.pc = self.code.resolve_label(label[1])

    def _op_push(self, instruction: Instruction) -> None:
        (src,) = instruction.operands
        self.stack.append(self.read(src))

    def _op_pop(self, instruction: Instruction) -> None:
        (dst,) = instruction.operands
        self.write(dst, self.stack.pop())

    def _op_alloctemps(self, instruction: Instruction) -> None:
        (count,) = instruction.operands
        self.tp = len(self.stack)
        self.stack.extend([NIL] * count[1])

    def _op_argcheck(self, instruction: Instruction) -> None:
        low, high = instruction.operands
        nargs = self.regs[5]
        if nargs < low[1] or (high[1] is not None and nargs > high[1]):
            raise WrongNumberOfArgumentsError(
                f"{self.code.name}: called with {nargs} argument(s)")

    def _op_argdispatch(self, instruction: Instruction) -> None:
        (table,) = instruction.operands
        nargs = self.regs[5]
        for count, label in table[1]:
            if count == nargs or count is None:
                self.pc = self.code.resolve_label(label)
                return
        raise WrongNumberOfArgumentsError(
            f"{self.code.name}: called with {nargs} argument(s)")

    def _op_argexpand(self, instruction: Instruction) -> None:
        (total,) = instruction.operands
        record = self._current_record()
        missing = total[1] - record.nargs
        if missing <= 0:
            return
        # Insert empty slots between the existing args and the record.
        base = self.fp - record.nargs
        args = self.stack[base:self.fp]
        del self.stack[base:self.fp + 1]
        self.stack.extend(args)
        self.stack.extend([NIL] * missing)
        record.nargs = total[1]
        self.stack.append(record)
        self.fp = len(self.stack) - 1
        self.tp = self.fp + 1

    def _op_restcollect(self, instruction: Instruction) -> None:
        (fixed,) = instruction.operands
        record = self._current_record()
        base = self.fp - record.nargs
        args = self.stack[base:self.fp]
        rest_items = [self.machine_to_lisp(w) for w in args[fixed[1]:]]
        rest = from_list(rest_items)
        self.heap.note_allocation("cons", len(rest_items))
        new_args = args[:fixed[1]] + [rest]
        del self.stack[base:self.fp + 1]
        self.stack.extend(new_args)
        record.nargs = fixed[1] + 1
        self.stack.append(record)
        self.fp = len(self.stack) - 1
        self.tp = self.fp + 1

    # -- calls --------------------------------------------------------------------

    def _target_code(self, operand: Tuple[str, Any]) -> Tuple[CodeObject, int]:
        kind, value = operand
        if kind == "global":
            code = self.program.get(value)
            return code, 0
        if kind == "label":
            return self.code, self.code.resolve_label(value)
        raise MachineError(f"bad call target {operand!r}")

    def _op_call(self, instruction: Instruction) -> None:
        target, nargs = instruction.operands[0], instruction.operands[1][1]
        kind = instruction.operands[0][0]
        if kind == "global" and instruction.operands[0][1] not in \
                self.program.functions:
            name = instruction.operands[0][1]
            if name is sym("throw") and nargs == 2:
                value = self.machine_to_lisp(self.stack.pop())
                tag = self.machine_to_lisp(self.stack.pop())
                self._do_throw(tag, value)
                return
            # Calling an undefined global that is a primitive: generic apply.
            primitive = lookup_primitive(name)
            if primitive is not None:
                self._apply_primitive_from_stack(primitive, nargs)
                return
            raise MachineError(f"undefined function {name}")
        code, entry = self._target_code(target)
        self._push_frame(self.code, self.pc, nargs)
        self.code = code
        self.pc = entry

    def _op_kcall(self, instruction: Instruction) -> None:
        # Fast linkage: identical mechanics, cheaper cycle cost, and the
        # callee entry skips ARGCHECK/ARGDISPATCH.
        self._op_call(instruction)

    def _op_callf(self, instruction: Instruction) -> None:
        fn_src, nargs_op = instruction.operands
        nargs = nargs_op[1]
        fn = self.read(fn_src)
        self._invoke_value(fn, nargs, tail=False)

    def _invoke_value(self, fn: Any, nargs: int, tail: bool) -> None:
        if isinstance(fn, PrimitiveFn):
            self._apply_primitive_from_stack(fn.primitive, nargs)
            if tail:
                self._op_ret_value(self.stack.pop())
            return
        if isinstance(fn, Closure):
            if tail:
                self._replace_frame(nargs)
            else:
                self._push_frame(self.code, self.pc, nargs)
            self.cp = fn.env
            self.code = fn.code
            self.pc = fn.entry
            return
        raise MachineError(f"not a function: {fn!r}")

    def _apply_primitive_from_stack(self, primitive: Primitive,
                                    nargs: int) -> None:
        args = [self.machine_to_lisp(w) for w in self.stack[-nargs:]] \
            if nargs else []
        del self.stack[len(self.stack) - nargs:]
        self.cycles += primitive.cycles
        result = primitive.apply(args)
        if primitive.allocates:
            self.heap.adopt(result)
        self.stack.append(self.lisp_to_pointer(result))

    def _replace_frame(self, nargs: int) -> None:
        """Tail call: replace the current frame's arguments with the *nargs*
        values on top of the stack, keeping the return linkage."""
        new_args = self.stack[len(self.stack) - nargs:] if nargs else []
        record = self._current_record()
        # Pdl pointers into the dying frame's scratch area must be certified
        # before the area is reused (run-time backstop for the static rule).
        new_args = [self._certify(word)
                    if isinstance(word, PdlNumber)
                    and word.frame_serial == record.serial else word
                    for word in new_args]
        self._live_serials.discard(record.serial)
        base = self.fp - record.nargs
        del self.stack[base:]
        self.stack.extend(new_args)
        self._serial += 1
        record.serial = self._serial
        self._live_serials.add(self._serial)
        record.nargs = nargs
        self.stack.append(record)
        self.fp = len(self.stack) - 1
        self.tp = self.fp + 1
        self.regs[5] = nargs
        self.call_count += 1

    def _op_tailcall(self, instruction: Instruction) -> None:
        target, nargs_op = instruction.operands
        nargs = nargs_op[1]
        if target[0] == "global" and target[1] not in self.program.functions:
            primitive = lookup_primitive(target[1])
            if primitive is not None:
                self._apply_primitive_from_stack(primitive, nargs)
                self._op_ret_value(self.stack.pop())
                return
            raise MachineError(f"undefined function {target[1]}")
        code, entry = self._target_code(target)
        self._replace_frame(nargs)
        self.cp = None
        self.code = code
        self.pc = entry

    def _op_applyf(self, instruction: Instruction) -> None:
        """apply: the last pushed argument is a list to spread."""
        from ..datum import to_list

        fn_src, nargs_op = instruction.operands
        fn = self.read(fn_src)
        spread_list = self.machine_to_lisp(self.stack.pop())
        items = [self.lisp_to_pointer(v) for v in to_list(spread_list)]
        self.stack.extend(items)
        nargs = nargs_op[1] - 1 + len(items)
        self._invoke_value(fn, nargs, tail=False)

    def _op_tailcallf(self, instruction: Instruction) -> None:
        fn_src, nargs_op = instruction.operands
        fn = self.read(fn_src)
        self._invoke_value(fn, nargs_op[1], tail=True)

    def _op_ret(self, instruction: Instruction) -> None:
        (src,) = instruction.operands
        self._op_ret_value(self.read(src))

    def _op_ret_value(self, value: Any) -> None:
        record = self._current_record()
        # A pdl pointer must never survive its frame: certify on return,
        # while the frame is still alive.
        value = self._certify(value)
        self._live_serials.discard(record.serial)
        base = self.fp - record.nargs
        del self.stack[base:]
        self.fp = record.old_fp
        self.tp = record.old_tp
        self.cp = record.old_cp
        if record.ret_code is None:
            self.result = value
            self._halted = True
            return
        self.code = record.ret_code
        self.pc = record.ret_pc
        self.stack.append(value)

    # -- generic (pointer-world) operations -------------------------------------------

    def _op_generic(self, instruction: Instruction) -> None:
        name_op, dst = instruction.operands[0], instruction.operands[1]
        srcs = instruction.operands[2:]
        name = name_op[1]
        if name is sym("throw"):
            words = [self._certify(self.read(src)) for src in srcs]
            args = [self.machine_to_lisp(w) for w in words]
            self._do_throw(args[0], args[1])
            return
        primitive = lookup_primitive(name)
        if primitive is None:
            raise MachineError(f"GENERIC: unknown primitive {name}")
        self.cycles += primitive.cycles
        words = [self.read(src) for src in srcs]
        if not primitive.safe:
            words = [self._certify(w) for w in words]
        args = [self.machine_to_lisp(w) for w in words]
        result = primitive.apply(args)
        if primitive.allocates:
            self.heap.adopt(result)
        self.write(dst, self.lisp_to_pointer(result))

    def _op_gfunc(self, instruction: Instruction) -> None:
        dst, name_op = instruction.operands
        name = name_op[1]
        if name in self.program.functions:
            code = self.program.get(name)
            closure = Closure(code, 0, [], name=str(name))
            self.heap.allocate_closure(closure)
            self.write(dst, closure)
            return
        primitive = lookup_primitive(name)
        if primitive is not None:
            self.write(dst, PrimitiveFn(primitive))
            return
        raise MachineError(f"GFUNC: undefined function {name}")

    # -- closures ----------------------------------------------------------------------

    def _op_closure(self, instruction: Instruction) -> None:
        dst, target = instruction.operands[0], instruction.operands[1]
        srcs = instruction.operands[2:]
        code, entry = self._target_code(target)
        env = [self.read(src) for src in srcs]
        # Captured pdl pointers would dangle; certify them into the heap.
        env = [self._certify(w) for w in env]
        closure = Closure(code, entry, env)
        self.heap.allocate_closure(closure)
        self.write(dst, closure)

    def _op_envref(self, instruction: Instruction) -> None:
        dst, slot = instruction.operands
        if self.cp is None:
            raise MachineError("ENVREF with no environment")
        self.write(dst, self.cp[slot[1]])

    def _op_mkcell(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        cell = self.heap.allocate_cell(self._certify(self.read(src)))
        self.write(dst, cell)

    def _op_cellref(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        cell = self.read(src)
        if not isinstance(cell, Cell):
            raise MachineError(f"CELLREF: not a cell: {cell!r}")
        self.write(dst, cell.value)

    def _op_cellset(self, instruction: Instruction) -> None:
        cell_src, src = instruction.operands
        cell = self.read(cell_src)
        if not isinstance(cell, Cell):
            raise MachineError(f"CELLSET: not a cell: {cell!r}")
        cell.value = self._certify(self.read(src))

    # -- special variables ----------------------------------------------------------------

    def _op_specbind(self, instruction: Instruction) -> None:
        name_op, src = instruction.operands
        self.specials.push(name_op[1], self._certify(self.read(src)))

    def _op_specunbind(self, instruction: Instruction) -> None:
        (count,) = instruction.operands
        self.specials.pop_to(self.specials.depth() - count[1])

    def _op_speclookup(self, instruction: Instruction) -> None:
        dst, name_op = instruction.operands
        cell = self.specials.find_cell(name_op[1])
        if cell is None:
            from ..interp.environment import Cell as SpecialCell

            cell = SpecialCell(UNBOUND)
            self.specials.globals[name_op[1]] = cell
        self.write(dst, cell)

    def _op_specref(self, instruction: Instruction) -> None:
        dst, src = instruction.operands[0], instruction.operands[1]
        cell = self.read(src)
        if cell.value is UNBOUND:
            name = (instruction.operands[2][1]
                    if len(instruction.operands) > 2 else "?")
            raise LispError(f"unbound special variable {name}")
        self.write(dst, cell.value)

    def _op_specset(self, instruction: Instruction) -> None:
        cell_src, src = instruction.operands
        cell = self.read(cell_src)
        cell.value = self._certify(self.read(src))

    def _op_specgref(self, instruction: Instruction) -> None:
        dst, name_op = instruction.operands
        value = self.specials.lookup(name_op[1])
        if value is UNBOUND:
            raise LispError(f"unbound special variable {name_op[1]}")
        self.write(dst, value)

    # -- catch / throw ---------------------------------------------------------------------

    def _op_catchpush(self, instruction: Instruction) -> None:
        label, tag_src = instruction.operands
        self.catch_stack.append(CatchRecord(
            tag=self.machine_to_lisp(self.read(tag_src)),
            stack_height=len(self.stack),
            fp=self.fp, tp=self.tp, cp=self.cp,
            code=self.code, target_pc=self.code.resolve_label(label[1]),
            specials_depth=self.specials.depth(),
            frame_serials=frozenset(self._live_serials),
        ))

    def _op_catchpop(self, instruction: Instruction) -> None:
        if not self.catch_stack:
            raise MachineError("CATCHPOP with empty catch stack")
        self.catch_stack.pop()

    def _do_throw(self, tag: Any, value: Any) -> None:
        from ..datum.numbers import lisp_eql

        while self.catch_stack:
            record = self.catch_stack.pop()
            if lisp_eql(record.tag, tag):
                del self.stack[record.stack_height:]
                self.fp = record.fp
                self.tp = record.tp
                self.cp = record.cp
                self.code = record.code
                self.pc = record.target_pc
                self.specials.pop_to(record.specials_depth)
                self._live_serials = set(record.frame_serials)
                self.stack.append(self.lisp_to_pointer(value))
                return
        raise LispError(f"uncaught throw to tag {tag!r}")

    # -- vector hardware (Section 3) -------------------------------------------

    def _vector_operand(self, operand, opcode):
        from ..primitives import LispVector

        word = self.read(operand)
        if not isinstance(word, LispVector):
            raise MachineError(f"{opcode}: not a vector: {word!r}")
        return word

    def _vector_cycles(self, length: int) -> None:
        # The hardware processes four elements per cycle (abstract model).
        self.cycles += max(1, length // 4)

    def _op_vdot(self, instruction: Instruction) -> None:
        dst, a_src, b_src = instruction.operands
        a = self._vector_operand(a_src, "VDOT")
        b = self._vector_operand(b_src, "VDOT")
        if len(a.data) != len(b.data):
            raise LispError("VDOT: length mismatch")
        self._vector_cycles(len(a.data))
        self.write(dst, float(sum(x * y for x, y in zip(a.data, b.data))))

    def _op_vsum(self, instruction: Instruction) -> None:
        dst, src = instruction.operands
        vector = self._vector_operand(src, "VSUM")
        self._vector_cycles(len(vector.data))
        self.write(dst, float(sum(vector.data)))

    def _op_vadd(self, instruction: Instruction) -> None:
        from ..primitives import LispVector

        dst, a_src, b_src = instruction.operands
        a = self._vector_operand(a_src, "VADD")
        b = self._vector_operand(b_src, "VADD")
        if len(a.data) != len(b.data):
            raise LispError("VADD: length mismatch")
        self._vector_cycles(len(a.data))
        result = LispVector([x + y for x, y in zip(a.data, b.data)])
        self.heap.adopt(result)
        self.write(dst, result)

    def _op_vscale(self, instruction: Instruction) -> None:
        from ..primitives import LispVector

        dst, k_src, v_src = instruction.operands
        factor = self._need_raw(self.read(k_src), "VSCALE")
        vector = self._vector_operand(v_src, "VSCALE")
        self._vector_cycles(len(vector.data))
        result = LispVector([factor * x for x in vector.data])
        self.heap.adopt(result)
        self.write(dst, result)

    def _op_nop(self, instruction: Instruction) -> None:
        pass

    def _op_halt(self, instruction: Instruction) -> None:
        self._halted = True

    def gc_roots(self) -> List[Any]:
        """Everything the collector must treat as live: registers, the
        whole stack, the saved closure environments inside frame and
        catch records (a suspended caller's ``old_cp`` -- or a catch
        record's ``cp``, which a tail call may hold the *only* reference
        to -- must keep its cells alive), the current closure
        environment, special-binding cells, and catch tags.  The records
        themselves are opaque to the heap's mark loop, so their
        environment lists are expanded into roots here."""
        roots: List[Any] = list(self.regs) + list(self.stack)
        for entry in self.stack:
            if isinstance(entry, FrameRecord) and entry.old_cp is not None:
                roots.extend(entry.old_cp)
        if self.cp is not None:
            roots.extend(self.cp)
        roots.extend(cell.value for cell in self.specials.all_cells())
        for record in self.catch_stack:
            roots.append(record.tag)
            if record.cp is not None:
                roots.extend(record.cp)
        roots.append(self.result)
        return roots

    def collect_garbage(self, reason: str = "explicit") -> int:
        collected = self.heap.collect(self.gc_roots(), reason)
        if self.telemetry is not None:
            self.telemetry.note_gc(self.heap)
        return collected

    def _op_gc(self, instruction: Instruction) -> None:
        self.collect_garbage()

    # -- synchronization (Section 3: "synchronization instructions are
    # available to the user") ------------------------------------------------

    # processor_id and locks are plain attributes so a single machine works
    # standalone; MultiMachine shares one lock table among processors.
    processor_id: int = 0
    locks: Optional[Dict[Any, int]] = None

    def _lock_table(self) -> Dict[Any, int]:
        if self.locks is None:
            self.locks = {}
        return self.locks

    def _op_lock(self, instruction: Instruction) -> None:
        (src,) = instruction.operands
        key = self.machine_to_lisp(self.read(src))
        table = self._lock_table()
        owner = table.get(key)
        if owner is not None and owner != self.processor_id:
            # Held elsewhere: spin (retry this instruction next quantum).
            self.pc -= 1
            return
        table[key] = self.processor_id

    def _op_unlock(self, instruction: Instruction) -> None:
        (src,) = instruction.operands
        key = self.machine_to_lisp(self.read(src))
        table = self._lock_table()
        if table.get(key) != self.processor_id:
            raise MachineError(f"UNLOCK of lock not held: {key!r}")
        del table[key]


def _raw_binary(opcode: str, a: Any, b: Any) -> Any:
    if opcode in ("ADD", "FADD"):
        return a + b
    if opcode in ("SUB", "FSUB"):
        return a - b
    if opcode in ("MULT", "FMULT"):
        return a * b
    if opcode == "DIV":
        if b == 0:
            raise LispError("integer division by zero")
        quotient = abs(a) // abs(b)
        return quotient if (a >= 0) == (b >= 0) else -quotient
    if opcode == "FDIV":
        if b == 0:
            raise LispError("float division by zero")
        return a / b
    if opcode == "MOD":
        return a - b * math.floor(a / b)
    if opcode == "REM":
        return a - b * math.trunc(a / b)
    if opcode == "FMAX":
        return max(a, b)
    if opcode == "FMIN":
        return min(a, b)
    if opcode == "FATAN":
        return math.atan2(a, b)
    raise MachineError(f"bad raw binary op {opcode}")  # pragma: no cover


def _raw_unary(opcode: str, value: Any) -> Any:
    if opcode in ("NEG", "FNEG"):
        return -value
    if opcode == "FSIN":  # argument in cycles, like the S-1 instruction
        return math.sin(value * 2.0 * math.pi)
    if opcode == "FCOS":
        return math.cos(value * 2.0 * math.pi)
    if opcode == "FSINR":
        return math.sin(value)
    if opcode == "FCOSR":
        return math.cos(value)
    if opcode == "FSQRT":
        if isinstance(value, complex) or value < 0:
            import cmath

            return cmath.sqrt(value)
        return math.sqrt(value)
    if opcode == "FABS":
        return abs(value)
    if opcode == "FEXP":
        return math.exp(value)
    if opcode == "FLOG":
        return math.log(value)
    if opcode == "FLT":
        return float(value)
    if opcode == "FIX":
        return math.trunc(value)
    raise MachineError(f"bad raw unary op {opcode}")  # pragma: no cover


_DISPATCH = {
    "MOV": Machine._op_mov,
    "UNBOX": Machine._op_unbox,
    "BOXF": Machine._op_boxf,
    "PDLBOX": Machine._op_pdlbox,
    "CERTIFY": Machine._op_certify,
    "JMP": Machine._op_jmp,
    "JUMPNIL": Machine._op_jumpnil,
    "JUMPNNIL": Machine._op_jumpnnil,
    "CMPBR": Machine._op_cmpbr,
    "EQLBR": Machine._op_eqlbr,
    "PUSH": Machine._op_push,
    "POP": Machine._op_pop,
    "ALLOCTEMPS": Machine._op_alloctemps,
    "ARGCHECK": Machine._op_argcheck,
    "ARGDISPATCH": Machine._op_argdispatch,
    "ARGEXPAND": Machine._op_argexpand,
    "RESTCOLLECT": Machine._op_restcollect,
    "CALL": Machine._op_call,
    "KCALL": Machine._op_kcall,
    "CALLF": Machine._op_callf,
    "TAILCALL": Machine._op_tailcall,
    "TAILCALLF": Machine._op_tailcallf,
    "APPLYF": Machine._op_applyf,
    "RET": Machine._op_ret,
    "GENERIC": Machine._op_generic,
    "GFUNC": Machine._op_gfunc,
    "CLOSURE": Machine._op_closure,
    "ENVREF": Machine._op_envref,
    "MKCELL": Machine._op_mkcell,
    "CELLREF": Machine._op_cellref,
    "CELLSET": Machine._op_cellset,
    "SPECBIND": Machine._op_specbind,
    "SPECUNBIND": Machine._op_specunbind,
    "SPECLOOKUP": Machine._op_speclookup,
    "SPECREF": Machine._op_specref,
    "SPECSET": Machine._op_specset,
    "SPECGREF": Machine._op_specgref,
    "CATCHPUSH": Machine._op_catchpush,
    "CATCHPOP": Machine._op_catchpop,
    "VDOT": Machine._op_vdot,
    "VSUM": Machine._op_vsum,
    "VADD": Machine._op_vadd,
    "VSCALE": Machine._op_vscale,
    "NOP": Machine._op_nop,
    "HALT": Machine._op_halt,
    "GC": Machine._op_gc,
    "LOCK": Machine._op_lock,
    "UNLOCK": Machine._op_unlock,
}

for _opcode in RAW_BINARY_OPS:
    _DISPATCH[_opcode] = Machine._op_raw_binary
for _opcode in RAW_UNARY_OPS:
    _DISPATCH[_opcode] = Machine._op_raw_unary
