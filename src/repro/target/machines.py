"""Machine descriptions: the declarative tables that retarget the compiler.

"The compiler is table-driven to a great extent ... We expect to be able to
redirect the compiler to other target architectures such as the VAX or
PDP-10 with relatively little effort." (Section 1)  Everything
machine-specific the phases consult is bundled in one
:class:`MachineDescription`:

* the register file (size, naming, which registers the packer may use),
* the representation lattice and its storage widths (Table 3),
* the instruction cost table driving the simulator's cycle counter,
* the two behavioral switches the paper calls out: the 2 1/2-address
  ``RT`` constraint (Section 6.1) and whether the hardware sine takes its
  argument in cycles (the Section 4.4 remark that machine-inspired
  transformations are "benign but useless" elsewhere, so they are switched
  off, not run).

Three models ship: the S-1 Mark IIA itself, a VAX-like true 3-address
machine (Jonathan Rees's port, Section 5), and a PDP-10-like 2-address
machine with 16 accumulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple, Union

from ..errors import UnknownTargetError
from ..machine.isa import CYCLES
from ..machine.timing import (
    DEFAULT_PIPELINE,
    PipelineDescription,
    issue_latencies,
)
from .registers import (
    CP,
    FP,
    HP,
    REGISTER_FILE_SIZE,
    REGISTER_NAMES,
    RESERVED,
    RTA,
    RTB,
    SP,
)
from .reps import ALL_REPS, REP_WORDS


@dataclass(frozen=True, eq=False)
class MachineDescription:
    """One target architecture, as the compiler sees it."""

    name: str
    #: Size of the allocatable register file (the packer never goes past
    #: it; the fixed-role runtime registers live above on every model).
    registers: int
    #: 2 1/2-address arithmetic: OP dst,src1,src2 requires dst==src1 or an
    #: RT register in the dst/src1 slot (Section 6.1's staging dance).
    has_rt_constraint: bool
    #: Hardware sine/cosine take their argument in *cycles* (revolutions),
    #: enabling the sin$f -> sinc$f source rewrite (Section 4.4).
    sin_in_cycles: bool
    #: Register index -> assembly name, for listings on this target.
    register_names: Mapping[int, str]
    #: Opcode -> abstract cycle cost (the simulator's performance model).
    cycles: Mapping[str, int]
    #: The representation vocabulary and storage widths (shared Table 3
    #: lattice; a port with different word sizes would override these).
    reps: Tuple[str, ...] = ALL_REPS
    rep_words: Mapping[str, int] = field(default_factory=lambda: REP_WORDS)
    #: The target's pipelined timing model (``timing="pipelined"``): the
    #: issue-latency, flush, and structural-hazard tables the machine
    #: charges stall cycles from.  ``timing="single"`` ignores it.
    pipeline: PipelineDescription = DEFAULT_PIPELINE

    def allocatable(self) -> Tuple[int, ...]:
        """This target's general register pool."""
        return tuple(index for index in range(self.registers)
                     if index not in RESERVED
                     and index not in (RTA, RTB))


def _named(overrides: Mapping[int, str], stem: str = "R"
           ) -> Mapping[int, str]:
    names = {index: f"{stem}{index}" for index in range(REGISTER_FILE_SIZE)}
    names.update(overrides)
    return names


# The fixed-role runtime registers keep their names on every model: the
# simulated runtime (calling sequence, heap, frames) is shared.
_RUNTIME_NAMES = {HP: "HP", CP: "CP", FP: "FP", SP: "SP"}

S1 = MachineDescription(
    name="s1",
    registers=32,
    has_rt_constraint=True,
    sin_in_cycles=True,
    register_names=dict(REGISTER_NAMES),
    cycles=CYCLES,
    # The Mark IIA's deep pipeline (timing.DEFAULT_PIPELINE): 3-cycle
    # taken-branch refill, 1-cycle result bubble, heavy GENERIC occupancy.
    pipeline=DEFAULT_PIPELINE,
)

# A VAX-like model: true 3-address register arithmetic (no RT staging at
# all), 16 general registers, radians-based transcendentals, no vector
# hardware (the vector ops fall back to microcoded loops), slower float
# multiply/divide than the S-1's pipelined unit.
_VAX_CYCLES = dict(
    CYCLES,
    FMULT=3, FDIV=8, MULT=4, DIV=8,
    FSINR=12, FCOSR=12, FSIN=14, FCOS=14, FSQRT=12,
    VDOT=8, VSUM=8, VADD=8, VSCALE=8,
)

# A microcoded, barely-overlapped pipeline: short refill on taken
# branches, results forward for free from single-cycle producers, but the
# microcode sequencer serializes on generic dispatch and allocation.
_VAX_PIPELINE = PipelineDescription(
    name="vax",
    flush_cycles=2,
    result_latency=issue_latencies(_VAX_CYCLES),
    structural={
        "GENERIC": 3,
        "GFUNC": 1,
        "BOXF": 2,
        "MKCELL": 2,
        "CLOSURE": 3,
        "RESTCOLLECT": 3,
        "SPECLOOKUP": 2,
        "CATCHPUSH": 1,
        "GC": 6,
    },
    default_result_latency=0,
)

VAX = MachineDescription(
    name="vax",
    registers=16,
    has_rt_constraint=False,
    sin_in_cycles=False,
    register_names=_named(_RUNTIME_NAMES),
    cycles=_VAX_CYCLES,
    pipeline=_VAX_PIPELINE,
)

# A PDP-10-like model: 16 accumulators, strict 2-address arithmetic (the
# RT staging discipline applies, as on the S-1), radians-based sine, and
# the KL10's slower multiply/divide.
_PDP10_CYCLES = dict(
    CYCLES,
    MULT=4, DIV=9, FADD=2, FSUB=2, FMULT=4, FDIV=9,
    FSINR=14, FCOSR=14, FSIN=16, FCOS=16, FSQRT=14,
    VDOT=10, VSUM=10, VADD=10, VSCALE=10,
)

# A shallow KL10-style overlap: one-cycle branch bubble, free forwarding
# from single-cycle producers, modest serialization on heap traffic.
_PDP10_PIPELINE = PipelineDescription(
    name="pdp10",
    flush_cycles=1,
    result_latency=issue_latencies(_PDP10_CYCLES),
    structural={
        "GENERIC": 1,
        "BOXF": 1,
        "MKCELL": 1,
        "CLOSURE": 1,
        "RESTCOLLECT": 1,
        "SPECLOOKUP": 1,
        "GC": 3,
    },
    default_result_latency=0,
)

PDP10 = MachineDescription(
    name="pdp10",
    registers=16,
    has_rt_constraint=True,
    sin_in_cycles=False,
    register_names=_named(_RUNTIME_NAMES, stem="AC"),
    cycles=_PDP10_CYCLES,
    pipeline=_PDP10_PIPELINE,
)

#: The registry ``CompilerOptions.target`` is resolved against.
TARGETS: Dict[str, MachineDescription] = {
    "s1": S1,
    "vax": VAX,
    "pdp10": PDP10,
}

#: Historical alias (the paper says "PDP-10"; both spellings resolve).
PDP = PDP10


def get_target(name: Union[str, MachineDescription]) -> MachineDescription:
    """Resolve a target name to its machine description.

    Accepts a :class:`MachineDescription` unchanged, so internal code can
    pass either form.  Raises :class:`repro.errors.UnknownTargetError`
    (a ``KeyError`` subclass) for unregistered names.
    """
    if isinstance(name, MachineDescription):
        return name
    try:
        return TARGETS[name]
    except KeyError:
        raise UnknownTargetError(
            f"unknown target {name!r}: known targets are "
            f"{', '.join(sorted(TARGETS))}") from None
