"""The representation lattice of Table 3 ("Internal Object
Representations").

Every intermediate value carries one of these representation names through
representation analysis (WANTREP/ISREP, Section 6.2), TN annotation, and
code generation:

* ``POINTER`` -- the universal boxed format ("the type POINTER can always
  be used").
* ``SWFIX`` / ``DWFIX`` -- raw single/double-word fixnums.
* ``SWFLO`` / ``DWFLO`` / ``TWFLO`` -- raw single/double/tetra-word floats
  (the S-1 hardware's three float precisions).
* ``SWCPLX`` / ``DWCPLX`` / ``TWCPLX`` -- raw complex pairs at the same
  precisions ("There are single instructions for complex arithmetic").
* ``BIT`` -- a hardware condition, deliverable as nil/non-nil.
* ``JUMP`` -- "a value to be delivered as a branch of control": the rep an
  ``if`` wants for its test.
* ``NONE`` -- the value is discarded (non-final progn forms).

Representations are plain strings so node/TN annotations stay printable and
cheap to compare.  The conversion predicate and its cost table are the
"coercion edges" every downstream phase consults: representation analysis
to merge ``if`` arms, TNBIND to size stack slots, codegen to pick between
UNBOX / BOXF / FLT / FIX sequences.
"""

from __future__ import annotations

from typing import Dict, Optional

POINTER = "POINTER"
SWFIX = "SWFIX"
DWFIX = "DWFIX"
SWFLO = "SWFLO"
DWFLO = "DWFLO"
TWFLO = "TWFLO"
SWCPLX = "SWCPLX"
DWCPLX = "DWCPLX"
TWCPLX = "TWCPLX"
BIT = "BIT"
JUMP = "JUMP"
NONE = "NONE"

#: The full Table 3 vocabulary, in lattice order: the universal rep first,
#: then the raw numerics by widening width, then the control reps.
ALL_REPS = (
    POINTER,
    SWFIX, DWFIX,
    SWFLO, DWFLO, TWFLO,
    SWCPLX, DWCPLX, TWCPLX,
    BIT, JUMP, NONE,
)

#: Raw machine-number representations (unboxed words in registers or
#: stack slots).
NUMERIC_REPS = frozenset({
    SWFIX, DWFIX, SWFLO, DWFLO, TWFLO, SWCPLX, DWCPLX, TWCPLX,
})

#: Words of storage each representation occupies when spilled to the stack
#: (TNBIND slot sizing).  JUMP and NONE never occupy storage.
REP_WORDS: Dict[str, int] = {
    POINTER: 1,
    SWFIX: 1, DWFIX: 2,
    SWFLO: 1, DWFLO: 2, TWFLO: 4,
    SWCPLX: 2, DWCPLX: 4, TWCPLX: 8,
    BIT: 1,
    JUMP: 0, NONE: 0,
}

#: Representations whose boxed (pointer) form may be stack-allocated as a
#: "pdl number" (Section 6.3).  Fixnums are excluded: they are immediate
#: self-tagging words and never need a box at all.
PDL_ELIGIBLE = frozenset({SWFLO, DWFLO, TWFLO, SWCPLX, DWCPLX, TWCPLX})

_FIX_REPS = frozenset({SWFIX, DWFIX})


def is_numeric(rep: Optional[str]) -> bool:
    """True for the raw machine-number representations."""
    return rep in NUMERIC_REPS


def can_convert(from_rep: str, to_rep: str) -> bool:
    """Is there a coercion sequence from *from_rep* to *to_rep*?

    "The compiler is prepared to do a type coercion on every intermediate
    value of the program": pointers box/unbox against every numeric rep,
    numerics convert among themselves (FLT/FIX and free width changes),
    BIT materializes as a nil/non-nil pointer, anything deliverable can be
    delivered as a JUMP, and NONE absorbs everything.  JUMP and NONE
    produce no value, so nothing converts *out* of them.
    """
    if from_rep == to_rep:
        return True
    if to_rep == NONE:
        return True
    if to_rep == JUMP:
        return from_rep != NONE
    if from_rep in (JUMP, NONE):
        return False
    if to_rep == POINTER:
        return from_rep in NUMERIC_REPS or from_rep == BIT
    if from_rep == POINTER:
        return to_rep in NUMERIC_REPS or to_rep == BIT
    return from_rep in NUMERIC_REPS and to_rep in NUMERIC_REPS


# Abstract cycle costs of the individual coercion edges (mirrors the
# instruction costs codegen actually emits: MOV/UNBOX/FLT/FIX are cheap,
# heap boxing is the expensive direction "more to be avoided").
COST_UNBOX = 1       # UNBOX: pointer -> raw, with type check
COST_BOX_FIXNUM = 1  # immediate fixnums: a tagged MOV
COST_BOX_FLOAT = 5   # BOXF: heap-allocate a number box
COST_JUMP = 1        # a test + branch


def conversion_cost(from_rep: str, to_rep: str) -> Optional[int]:
    """Abstract cost of the coercion, or ``None`` when impossible.

    Defined exactly for the pairs :func:`can_convert` accepts.
    """
    if not can_convert(from_rep, to_rep):
        return None
    if from_rep == to_rep or to_rep == NONE:
        return 0
    if to_rep == JUMP:
        return COST_JUMP
    if from_rep == POINTER:
        return 0 if to_rep == BIT else COST_UNBOX
    if to_rep == POINTER:
        if from_rep == BIT:
            return 0  # predicates already deliver nil/t pointers
        return COST_BOX_FIXNUM if from_rep in _FIX_REPS else COST_BOX_FLOAT
    # numeric -> numeric: FLT/FIX across the fix/float boundary, free
    # width adjustment within a class.
    from_fix = from_rep in _FIX_REPS
    to_fix = to_rep in _FIX_REPS
    return 1 if from_fix != to_fix else 0
