"""The register file and its conventions.

The simulated machine has a 32-register file.  A handful of registers have
fixed roles shared by every target model (the runtime and the calling
sequence depend on them); the rest form the allocatable pool TNBIND packs
values into.

Two registers deserve their paper names:

* ``RTA`` / ``RTB`` -- the "RT" staging registers of the S-1's 2 1/2-address
  instruction format (Section 6.1): for ``OP dst,src1,src2`` one of
  ``dst==src1``, ``dst`` is RT, or ``src1`` is RT must hold.  Good TN
  allocation targets them so that "no MOV instructions are required; each
  instruction performs useful arithmetic".  They are allocated only through
  the packer's explicit RT-preference path, never from the general pool --
  on targets without the constraint they must stay out of ordinary code.

Fixed-role registers (``RESERVED``, never allocated):

* ``NARGS`` (5) -- argument count for the full-call sequence.
* ``HP`` (28) / ``CP`` (29) -- heap frontier and closure/environment
  pointer.
* ``FP`` (30) / ``SP`` (31) -- frame and stack pointers.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

#: Size of the register file every machine description indexes into.
REGISTER_FILE_SIZE = 32

RTA = 4
RTB = 6
NARGS = 5
HP = 28
CP = 29
FP = 30
SP = 31

#: Fixed-role registers the packer must never hand out.
RESERVED = frozenset({NARGS, HP, CP, FP, SP})

#: The default (S-1) register naming, keyed by index.
REGISTER_NAMES: Dict[int, str] = {
    index: f"R{index}" for index in range(REGISTER_FILE_SIZE)
}
REGISTER_NAMES.update({
    RTA: "RTA", RTB: "RTB", NARGS: "NARGS",
    HP: "HP", CP: "CP", FP: "FP", SP: "SP",
})


def register_name(index: int, names: Optional[Mapping[int, str]] = None
                  ) -> str:
    """Render a register index in a target's assembly syntax.  With no
    *names* mapping, the default S-1 naming applies."""
    return (names or REGISTER_NAMES).get(index, f"R{index}")


def allocatable_registers() -> List[int]:
    """The general register pool, in allocation order: every register that
    is neither fixed-role nor an RT staging register.  Callers cap the pool
    to a target's file size via ``CompilerOptions.registers_available``."""
    return [index for index in range(REGISTER_FILE_SIZE)
            if index not in RESERVED and index not in (RTA, RTB)]
