"""Target machine descriptions (the table-driven retargeting layer).

Three submodules:

* :mod:`repro.target.reps` -- the Table 3 representation lattice and its
  coercion-cost edges.
* :mod:`repro.target.registers` -- the register file, the RT staging
  registers, and the fixed-role runtime registers.
* :mod:`repro.target.machines` -- :class:`MachineDescription` bundles of
  the above plus per-target cost tables, and the ``get_target`` registry
  (``s1``, ``vax``, ``pdp10``).
"""

from .machines import (
    MachineDescription,
    PDP,
    PDP10,
    S1,
    TARGETS,
    VAX,
    get_target,
)
from .registers import (
    REGISTER_NAMES,
    RESERVED,
    RTA,
    RTB,
    allocatable_registers,
    register_name,
)
from .reps import (
    ALL_REPS,
    BIT,
    JUMP,
    NONE,
    NUMERIC_REPS,
    PDL_ELIGIBLE,
    POINTER,
    REP_WORDS,
    SWFIX,
    SWFLO,
    can_convert,
    conversion_cost,
    is_numeric,
)

__all__ = [
    "ALL_REPS", "BIT", "JUMP", "MachineDescription", "NONE", "NUMERIC_REPS",
    "PDL_ELIGIBLE", "PDP", "PDP10", "POINTER", "REGISTER_NAMES", "REP_WORDS",
    "RESERVED", "RTA", "RTB", "S1", "SWFIX", "SWFLO", "TARGETS", "VAX",
    "allocatable_registers", "can_convert", "conversion_cost", "get_target",
    "is_numeric", "register_name",
]
