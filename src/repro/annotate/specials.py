"""Special-variable lookup annotation (Section 4.4, "Special variable
lookups").

S-1 LISP deep-binds dynamic variables, so naive access is a linear search of
the binding stack.  "The S-1 LISP compiler uses the same trick formerly used
in INTERLISP to reduce this search overhead: on entry to a function, all the
special variables needed by that function are searched for once and pointers
to the relevant stack locations are cached in the function's local
activation frame ...  The S-1 LISP compiler actually generalizes the trick
further.  For each variable the smallest subtree that contains all the
references is determined; the lookup and pointer caching for that variable
is performed before execution of that smallest subtree.  This may avoid a
lookup if the subtree is in an arm of a conditional.  The trick is further
refined to take loops into account."

This phase computes, per lambda and per special variable used under it, the
*cache point*: the smallest subtree containing all uses, hoisted out of any
loop (progbody with a backward go) it would otherwise sit in.  The code
generator emits one ``SPECLOOKUP`` (deep search + cache) at the cache point
and constant-time ``SPECREF``/``SPECSET`` instructions at the uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..datum.symbols import Symbol
from ..ir.nodes import (
    GoNode,
    LambdaNode,
    Node,
    ProgbodyNode,
    SetqNode,
    TagMarker,
    Variable,
    VarRefNode,
)


@dataclass
class SpecialCachePlan:
    """For one lambda: where each special variable's lookup is cached."""

    # symbol -> the node before whose execution the lookup is performed
    cache_points: Dict[Symbol, Node] = field(default_factory=dict)
    # symbols referenced anywhere under the lambda (its body, not nested fns)
    used: Set[Symbol] = field(default_factory=set)


def annotate_special_lookups(root: Node, enable: bool = True
                             ) -> Dict[LambdaNode, SpecialCachePlan]:
    """Compute cache plans for every lambda in the tree.

    With ``enable=False`` there is no caching: every access searches the
    binding stack (the P4 ablation)."""
    plans: Dict[LambdaNode, SpecialCachePlan] = {}
    lambdas = [node for node in root.walk()
               if isinstance(node, LambdaNode) and not _is_inline(node)]
    if isinstance(root, LambdaNode) and root not in lambdas:
        lambdas.append(root)
    for lam in lambdas:
        plan = SpecialCachePlan()
        uses = _special_uses(lam)
        rebound = _rebound_in_frame(lam)
        for symbol, nodes in uses.items():
            plan.used.add(symbol)
            if not enable:
                continue
            if symbol in rebound:
                # An inline let deep-binds this symbol *mid-frame*: a cached
                # cell fetched before that binding would bypass it.  Fall
                # back to per-access search (always correct).
                continue
            point = _common_ancestor_within(nodes, lam)
            point = _hoist_out_of_loops(point, lam)
            plan.cache_points[symbol] = point
            for use in nodes:
                if isinstance(use, VarRefNode):
                    use.variable.lookup_node = point
        plans[lam] = plan
    return plans


def _rebound_in_frame(lam: LambdaNode) -> Set[Symbol]:
    """Special names deep-bound by inline (let) lambdas within this frame.

    The frame's *own* special parameters bind at entry, before any cache
    point, so they are safe; a let's binding happens mid-frame and
    invalidates caches established above it."""
    rebound: Set[Symbol] = set()

    def visit(node: Node) -> None:
        if isinstance(node, LambdaNode) and node is not lam:
            if not _is_inline(node):
                return
            for variable in node.all_variables():
                if variable.special:
                    rebound.add(variable.name)
        for child in node.children():
            visit(child)

    visit(lam.body)
    return rebound


def _is_inline(node: LambdaNode) -> bool:
    """A lambda compiled into its parent's frame (a ``let``): it shares the
    enclosing activation, so special caching is planned by the enclosing
    function, not by the let."""
    from ..ir.nodes import CallNode, STRATEGY_JUMP

    parent = node.parent
    if isinstance(parent, CallNode) and parent.fn is node:
        return True
    return node.strategy == STRATEGY_JUMP


def _special_uses(lam: LambdaNode) -> Dict[Symbol, List[Node]]:
    """Special-variable reference/assignment nodes in this lambda's frame:
    its body plus the bodies of inline (let) lambdas, but not nested
    closure-creating lambdas, which cache for themselves."""
    uses: Dict[Symbol, List[Node]] = {}
    def visit(node: Node) -> None:
        if isinstance(node, LambdaNode) and node is not lam \
                and not _is_inline(node):
            return  # separate function: its own plan
        if isinstance(node, VarRefNode) and node.variable.special:
            uses.setdefault(node.variable.name, []).append(node)
        if isinstance(node, SetqNode) and node.variable.special:
            uses.setdefault(node.variable.name, []).append(node)
        for child in node.children():
            visit(child)
    visit(lam.body)
    # Optional-parameter defaults run inside the frame too.
    for opt in lam.optionals:
        visit(opt.default)
    return uses


def _common_ancestor_within(nodes: List[Node], lam: LambdaNode) -> Node:
    paths: List[List[Node]] = []
    for node in nodes:
        path: List[Node] = []
        current: Optional[Node] = node
        while current is not None and current is not lam:
            path.append(current)
            current = current.parent
        path.append(lam)
        paths.append(list(reversed(path)))
    shortest = min(len(p) for p in paths)
    ancestor: Node = lam
    for i in range(shortest):
        step = {id(p[i]) for p in paths}
        if len(step) == 1:
            ancestor = paths[0][i]
        else:
            break
    return ancestor


def _hoist_out_of_loops(point: Node, lam: LambdaNode) -> Node:
    """"The trick is further refined to take loops into account": if the
    cache point sits inside a progbody that loops (has a backward go), the
    lookup would run once per iteration; hoist it just outside the loop."""
    current: Optional[Node] = point
    hoisted = point
    while current is not None and current is not lam:
        parent = current.parent
        if isinstance(parent, ProgbodyNode) and _is_loop(parent):
            hoisted = parent
        current = parent
    return hoisted


def _is_loop(progbody: ProgbodyNode) -> bool:
    """A progbody loops if any go targets one of its tags."""
    tags = {item.name for item in progbody.items if isinstance(item, TagMarker)}
    if not tags:
        return False
    for node in progbody.walk():
        if isinstance(node, GoNode) and node.target is progbody \
                and node.tag in tags:
            return True
    return False


def lookup_cost_report(plans: Dict[LambdaNode, SpecialCachePlan]
                       ) -> Dict[str, int]:
    """How many deep searches the plan performs per activation (one per
    cached variable) versus naive per-access searching."""
    cached_lookups = sum(len(plan.cache_points) for plan in plans.values())
    total_accesses = 0
    for lam, plan in plans.items():
        for node in lam.walk():
            if isinstance(node, (VarRefNode, SetqNode)) \
                    and node.variable.special:
                total_accesses += 1
    return {"deep_searches_with_caching": cached_lookups,
            "accesses": total_accesses}
