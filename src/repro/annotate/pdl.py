"""Pdl-number annotation (Section 6.3).

A lifetime analysis deciding, for raw numbers that must be converted to
pointer form, "whether stack allocation of the number will provide a
sufficient lifetime or whether the general heap-allocation of a number is
required".

Two flags per node, computed by a single "outorder" walk (top-down for
PDLOKP, bottom-up for PDLNUMP):

* ``PDLOKP`` -- "whether the node's parent is willing to accept a pdl number
  (unsafe pointer) as the result of this node".  More than a flag: when
  true, it holds the node that *authorized* the pdl number, which bounds the
  required lifetime.  An ``if`` "simply passes the PDLOKP authorization of
  its parent down to the two arms of the conditional.  On the other hand, it
  always of itself authorizes the predicate computation".
* ``PDLNUMP`` -- "whether the node itself might be inclined to produce a pdl
  number": e.g. ``(+$f x y)`` when a pointer result is required, but never
  ``(car x)``.

A node finally gets a pdl TN (``node.pdl_tn`` set by TNBIND) when PDLOKP and
PDLNUMP hold, WANTREP is POINTER, and ISREP is one of the numeric reps with
heap-allocated pointer counterparts.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.nodes import (
    CallNode,
    CaseqNode,
    CatcherNode,
    FunctionRefNode,
    IfNode,
    LambdaNode,
    LiteralNode,
    Node,
    PrognNode,
    ProgbodyNode,
    ReturnNode,
    SetqNode,
    VarRefNode,
)
from ..primitives import lookup_primitive
from ..target.reps import PDL_ELIGIBLE, POINTER


def annotate_pdl(root: Node, enable: bool = True) -> None:
    """Compute PDLOKP/PDLNUMP.  ``enable=False`` forces heap allocation
    everywhere (the P2 ablation)."""
    if not enable:
        for node in root.walk():
            node.pdlokp = None
            node.pdlnump = False
        return
    _okp_pass(root, None)
    _nump_pass(root)


# ---------------------------------------------------------------------------
# PDLOKP: top-down authorization
# ---------------------------------------------------------------------------

def _okp_pass(node: Node, authorizer: Optional[Node]) -> None:
    node.pdlokp = authorizer
    if isinstance(node, IfNode):
        # The conditional test is a safe operation: the if itself authorizes.
        _okp_pass(node.test, node)
        _okp_pass(node.then, authorizer)
        _okp_pass(node.else_, authorizer)
    elif isinstance(node, PrognNode):
        # Discarded values may freely be pdl numbers; the progn authorizes.
        for form in node.forms[:-1]:
            _okp_pass(form, node)
        _okp_pass(node.forms[-1], authorizer)
    elif isinstance(node, SetqNode):
        # Storing into a stack-allocated lexical keeps the pointer within
        # the frame: authorized for the variable's whole binder.  Storing
        # into a special or heap-allocated variable is unsafe.
        variable = node.variable
        if variable.special or variable.heap_allocated or variable.binder is None:
            _okp_pass(node.value, None)
        else:
            _okp_pass(node.value, variable.binder.body)
    elif isinstance(node, CallNode):
        _okp_call(node)
    elif isinstance(node, LambdaNode):
        for opt in node.optionals:
            _okp_pass(opt.default, None)
        _okp_pass(node.body, None)  # returned values must be certified safe
    elif isinstance(node, CaseqNode):
        _okp_pass(node.key, node)  # dispatching compares: safe
        for _, body in node.clauses:
            _okp_pass(body, authorizer)
        _okp_pass(node.default, authorizer)
    elif isinstance(node, ProgbodyNode):
        for child in node.children():
            _okp_pass(child, node)
    elif isinstance(node, ReturnNode):
        # The progbody's value may itself flow to an authorized context,
        # but tracking that is the progbody's job; be conservative.
        _okp_pass(node.value, None)
    elif isinstance(node, CatcherNode):
        _okp_pass(node.tag, node)
        _okp_pass(node.body, None)  # the caught value escapes the body


def _okp_call(node: CallNode) -> None:
    if isinstance(node.fn, LambdaNode):
        fn = node.fn
        # Binding a pdl pointer to a stack variable of the let keeps it in
        # the frame: the let's body is the authorizer (the binding lives
        # until the body finishes).
        for variable, arg in zip(fn.required, node.args):
            if variable.special or variable.heap_allocated:
                _okp_pass(arg, None)
            else:
                _okp_pass(arg, fn.body)
        for arg in node.args[len(fn.required):]:
            _okp_pass(arg, None)
        for opt in fn.optionals:
            _okp_pass(opt.default, None)
        _okp_pass(fn.body, node.pdlokp)
        fn.pdlokp = None
        return
    primitive = None
    if isinstance(node.fn, FunctionRefNode):
        node.fn.pdlokp = None
        primitive = lookup_primitive(node.fn.name)
    else:
        _okp_pass(node.fn, None)
    if primitive is not None:
        if primitive.safe:
            # Safe operation: arguments may be pdl numbers; the lifetime
            # must extend until this call executes.  "in (atan (if p x y)
            # 3.0), x has a non-false PDLOKP property that points to the
            # atan node, not the if node."
            for arg in node.args:
                _okp_pass(arg, node)
        else:
            for arg in node.args:
                _okp_pass(arg, None)
        return
    # Unknown function: "passing a pointer to a procedure is safe.
    # Arguments to compiled procedures are guaranteed to be valid during
    # execution of the procedure" -- authorized, lifetime = the call.
    # EXCEPT for tail calls: the frame (and its scratch area) is replaced
    # at the jump, so a pdl argument would dangle into its own callee.
    authorizer = None if node.is_tail_call else node
    for arg in node.args:
        _okp_pass(arg, authorizer)


# ---------------------------------------------------------------------------
# PDLNUMP: bottom-up production
# ---------------------------------------------------------------------------

def _nump_pass(node: Node) -> bool:
    produced = False
    if isinstance(node, CallNode):
        for arg in node.args:
            _nump_pass(arg)
        if isinstance(node.fn, LambdaNode):
            for opt in node.fn.optionals:
                _nump_pass(opt.default)
            produced = _nump_pass(node.fn.body)
            node.fn.pdlnump = False
        else:
            if not isinstance(node.fn, FunctionRefNode):
                _nump_pass(node.fn)
            primitive = (lookup_primitive(node.fn.name)
                         if isinstance(node.fn, FunctionRefNode) else None)
            produced = bool(primitive is not None and primitive.pdl_result)
    elif isinstance(node, IfNode):
        _nump_pass(node.test)
        then_p = _nump_pass(node.then)
        else_p = _nump_pass(node.else_)
        produced = then_p or else_p
    elif isinstance(node, PrognNode):
        for form in node.forms[:-1]:
            _nump_pass(form)
        produced = _nump_pass(node.forms[-1])
    elif isinstance(node, SetqNode):
        produced = _nump_pass(node.value)
    elif isinstance(node, LiteralNode):
        # A float literal materialized as a pointer can live on the pdl.
        from ..analysis.typeinfo import literal_type

        produced = literal_type(node.value) in PDL_ELIGIBLE
    else:
        for child in node.children():
            _nump_pass(child)
        produced = False
    node.pdlnump = produced
    return produced


# ---------------------------------------------------------------------------
# The pdl decision (consumed by TNBIND)
# ---------------------------------------------------------------------------

def wants_pdl_allocation(node: Node) -> bool:
    """All four of the paper's conditions (Section 6.3)."""
    return bool(
        node.pdlokp is not None
        and node.pdlnump
        and node.wantrep == POINTER
        and node.isrep in PDL_ELIGIBLE
    )


def pdl_sites(root: Node) -> List[Node]:
    return [node for node in root.walk() if wants_pdl_allocation(node)]
