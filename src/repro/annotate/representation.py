"""Representation analysis (Section 6.2).

Two passes over the tree:

* **top-down**: every node gets a WANTREP, "determined by its context within
  its parent node and by the WANTREP of the parent".  An ``if`` test wants
  ``JUMP``; the arms want what the ``if`` wants; the arguments of ``+$f``
  want ``SWFLO``.
* **bottom-up**: every node gets an ISREP, "calculated ... on the basis of
  the ISREP information for its descendants and the operation performed by
  the node itself".  ``(+$f x y)`` delivers SWFLO no matter what; ``car``
  delivers a POINTER.

An ``if`` whose arms disagree resolves toward the WANTREP when one arm
already matches it and the other is convertible (the paper's ``(+$f (if p
(sqrt$f q) (car r)) 3.0)`` example), rather than defaulting to POINTER and
boxing the matching arm for nothing.

Variables "introduce loops into the otherwise tree-like representation
analysis ... In practice, a little heuristic guesswork suffices: if not all
the references to a variable agree as to what type is desirable for it, the
type POINTER can always be used."  We iterate the two passes twice with a
variable-rep election in between.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.typeinfo import literal_type
from ..ir.nodes import (
    CallNode,
    CaseqNode,
    CatcherNode,
    FunctionRefNode,
    GoNode,
    IfNode,
    LambdaNode,
    LiteralNode,
    Node,
    PrognNode,
    ProgbodyNode,
    ReturnNode,
    SetqNode,
    Variable,
    VarRefNode,
)
from ..primitives import lookup_primitive
from ..target.reps import (
    BIT,
    JUMP,
    NONE,
    POINTER,
    can_convert,
    conversion_cost,
    is_numeric,
)


def annotate_representations(root: Node, enable: bool = True) -> None:
    """Run the two-pass analysis.  With ``enable=False`` everything is
    POINTER (the fully-boxed ablation)."""
    if not enable:
        for node in root.walk():
            node.wantrep = POINTER
            node.isrep = POINTER
            if isinstance(node, IfNode):
                node.test.wantrep = POINTER
        for node in root.walk():
            if isinstance(node, LambdaNode):
                for variable in node.all_variables():
                    variable.rep = POINTER
        return

    # Two rounds: the first elects variable reps from reference contexts,
    # the second recomputes want/is reps with those elections in place.
    for _round in range(2):
        _want_pass(root, POINTER)
        _is_pass(root)
        _elect_variable_reps(root)
    _want_pass(root, POINTER)
    _is_pass(root)


# ---------------------------------------------------------------------------
# Pass 1: WANTREP, top-down
# ---------------------------------------------------------------------------

def _want_pass(node: Node, want: str) -> None:
    node.wantrep = want
    if isinstance(node, IfNode):
        _want_pass(node.test, JUMP)
        _want_pass(node.then, want)
        _want_pass(node.else_, want)
    elif isinstance(node, PrognNode):
        for form in node.forms[:-1]:
            _want_pass(form, NONE)
        _want_pass(node.forms[-1], want)
    elif isinstance(node, SetqNode):
        target = node.variable.rep or _declared(node.variable) or POINTER
        _want_pass(node.value, target)
    elif isinstance(node, CallNode):
        _want_call(node, want)
    elif isinstance(node, LambdaNode):
        for opt in node.optionals:
            _want_pass(opt.default, opt.variable.rep
                       or _declared(opt.variable) or POINTER)
        _want_pass(node.body, POINTER)
    elif isinstance(node, CaseqNode):
        _want_pass(node.key, POINTER)
        for _, body in node.clauses:
            _want_pass(body, want)
        _want_pass(node.default, want)
    elif isinstance(node, ProgbodyNode):
        for child in node.children():
            _want_pass(child, NONE)
    elif isinstance(node, ReturnNode):
        _want_pass(node.value, POINTER)
    elif isinstance(node, CatcherNode):
        _want_pass(node.tag, POINTER)
        _want_pass(node.body, POINTER)
    # literals / varrefs / function-refs / go: leaves.


def _want_call(node: CallNode, want: str) -> None:
    if isinstance(node.fn, LambdaNode):
        fn = node.fn
        fn.wantrep = NONE  # the lambda itself is not materialized (a let)
        for variable, arg in zip(fn.required, node.args):
            _want_pass(arg, variable.rep or _declared(variable) or POINTER)
        # Extra args (arity mismatch survives to run time): POINTER.
        for arg in node.args[len(fn.required):]:
            _want_pass(arg, POINTER)
        for opt in fn.optionals:
            _want_pass(opt.default, POINTER)
        _want_pass(fn.body, want)
        return
    primitive = None
    if isinstance(node.fn, FunctionRefNode):
        node.fn.wantrep = NONE
        primitive = lookup_primitive(node.fn.name)
    else:
        _want_pass(node.fn, POINTER)
    if primitive is not None and primitive.arg_rep is not None:
        for arg in node.args:
            _want_pass(arg, primitive.arg_rep)
    else:
        # Generic primitive or unknown function: pointer arguments.
        for arg in node.args:
            _want_pass(arg, POINTER)


def _declared(variable: Variable) -> Optional[str]:
    return variable.declared_type


# ---------------------------------------------------------------------------
# Pass 2: ISREP, bottom-up
# ---------------------------------------------------------------------------

def _is_pass(node: Node) -> str:
    if isinstance(node, LiteralNode):
        rep = literal_type(node.value)
        # A literal can be emitted in whatever format is wanted if numeric.
        if node.wantrep is not None and node.wantrep not in (JUMP, NONE) \
                and can_convert(rep, node.wantrep):
            rep = node.wantrep if node.wantrep != BIT else rep
        node.isrep = rep
        return rep
    if isinstance(node, VarRefNode):
        node.isrep = node.variable.rep or _declared(node.variable) or POINTER
        return node.isrep
    if isinstance(node, FunctionRefNode):
        node.isrep = POINTER
        return POINTER
    if isinstance(node, IfNode):
        _is_pass(node.test)
        then_rep = _is_pass(node.then)
        else_rep = _is_pass(node.else_)
        node.isrep = _merge_arm_reps(node.wantrep or POINTER, then_rep, else_rep)
        return node.isrep
    if isinstance(node, PrognNode):
        for form in node.forms[:-1]:
            _is_pass(form)
        node.isrep = _is_pass(node.forms[-1])
        return node.isrep
    if isinstance(node, SetqNode):
        value_rep = _is_pass(node.value)
        node.isrep = node.variable.rep or _declared(node.variable) or POINTER
        del value_rep
        return node.isrep
    if isinstance(node, LambdaNode):
        for opt in node.optionals:
            _is_pass(opt.default)
        _is_pass(node.body)
        node.isrep = POINTER  # a closure object
        return node.isrep
    if isinstance(node, CallNode):
        return _is_call(node)
    if isinstance(node, CaseqNode):
        _is_pass(node.key)
        reps = {_is_pass(body) for _, body in node.clauses}
        reps.add(_is_pass(node.default))
        node.isrep = reps.pop() if len(reps) == 1 else POINTER
        return node.isrep
    if isinstance(node, ProgbodyNode):
        for child in node.children():
            _is_pass(child)
        node.isrep = POINTER
        return node.isrep
    if isinstance(node, (GoNode,)):
        node.isrep = NONE
        return NONE
    if isinstance(node, ReturnNode):
        _is_pass(node.value)
        node.isrep = NONE
        return NONE
    if isinstance(node, CatcherNode):
        _is_pass(node.tag)
        _is_pass(node.body)
        node.isrep = POINTER
        return POINTER
    node.isrep = POINTER  # pragma: no cover
    return POINTER


def _is_call(node: CallNode) -> str:
    for arg in node.args:
        _is_pass(arg)
    if isinstance(node.fn, LambdaNode):
        fn = node.fn
        for opt in fn.optionals:
            _is_pass(opt.default)
        node.isrep = _is_pass(fn.body)
        fn.isrep = NONE
        return node.isrep
    if isinstance(node.fn, FunctionRefNode):
        node.fn.isrep = POINTER
        primitive = lookup_primitive(node.fn.name)
        if primitive is not None:
            if primitive.jump_result and node.wantrep == JUMP:
                node.isrep = JUMP
            else:
                node.isrep = primitive.result_rep
            return node.isrep
        node.isrep = POINTER
        return POINTER
    _is_pass(node.fn)
    node.isrep = POINTER
    return POINTER


def _merge_arm_reps(want: str, then_rep: str, else_rep: str) -> str:
    """The paper's if-arm resolution: prefer an arm's rep when it matches
    the WANTREP and the other arm can be converted to it."""
    if then_rep == else_rep:
        return then_rep
    if want not in (JUMP, NONE):
        if then_rep == want and can_convert(else_rep, want):
            return want
        if else_rep == want and can_convert(then_rep, want):
            return want
    return POINTER


# ---------------------------------------------------------------------------
# Variable representation election
# ---------------------------------------------------------------------------

def _elect_variable_reps(root: Node) -> None:
    """"If not all the references to a variable agree as to what type is
    desirable for it, the type POINTER can always be used."

    A lexical, unassigned-or-consistently-assigned, non-captured variable
    whose references all *want* the same numeric rep is given that rep.
    """
    for node in root.walk():
        if not isinstance(node, LambdaNode):
            continue
        is_let = isinstance(node.parent, CallNode) and node.parent.fn is node
        for index, variable in enumerate(node.required):
            if variable.special or variable.heap_allocated:
                variable.rep = POINTER
                continue
            if variable.declared_type is not None:
                variable.rep = variable.declared_type
                continue
            # Only let-bound variables are electable: true procedure
            # parameters arrive as pointers by the uniform calling
            # convention ("To provide a uniform procedure interface, all
            # arguments to user functions must be in pointer format").
            if not is_let:
                variable.rep = POINTER
                continue
            wants = {ref.wantrep for ref in variable.refs if ref.wantrep}
            wants.discard(NONE)
            candidate: Optional[str] = None
            if len(wants) == 1:
                want = wants.pop()
                if want not in (JUMP, BIT, POINTER) and is_numeric(want):
                    candidate = want
            if candidate is not None and variable.setqs:
                # Every assignment must be able to deliver that rep.
                for setq in variable.setqs:
                    if setq.value.isrep is None \
                            or not can_convert(setq.value.isrep, candidate):
                        candidate = None
                        break
            # The initializing argument must be convertible too.
            if candidate is not None:
                call = node.parent
                if index < len(call.args):
                    init = call.args[index]
                    if init.isrep is not None \
                            and not can_convert(init.isrep, candidate):
                        candidate = None
            variable.rep = candidate or POINTER
        for opt in node.optionals:
            opt.variable.rep = opt.variable.declared_type or POINTER
        if node.rest is not None:
            node.rest.rep = POINTER


# ---------------------------------------------------------------------------
# Reporting (Table 3 / P3 experiments)
# ---------------------------------------------------------------------------

def coercion_sites(root: Node) -> List[Node]:
    """Nodes whose ISREP differs from their WANTREP: each is a potential
    run-time coercion ("the compiler is prepared to do a type coercion on
    every intermediate value of the program")."""
    sites = []
    for node in root.walk():
        want, is_ = node.wantrep, node.isrep
        if want is None or is_ is None:
            continue
        if want in (NONE,) or is_ == want:
            continue
        if want == JUMP:
            if is_ == JUMP:
                continue
            sites.append(node)
            continue
        sites.append(node)
    return sites


def boxing_sites(root: Node) -> List[Node]:
    """Coercions from a raw numeric rep to POINTER: the expensive direction
    (allocation)."""
    return [node for node in coercion_sites(root)
            if node.isrep is not None and is_numeric(node.isrep)
            and node.wantrep == POINTER]


def representation_report(root: Node) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for node in root.walk():
        if node.isrep:
            counts[node.isrep] = counts.get(node.isrep, 0) + 1
    return counts
