"""Binding annotation (Section 4.4).

"The binding annotation phase examines each lambda-expression in the tree
and determines how that lambda-expression is to be compiled.  In the most
general case, a closure object must be explicitly constructed at run time
... However, in many special cases this is not necessary.  If through
compile-time analysis all the places can be found where the lambda-
expression may be invoked, then it may be possible to compile all such calls
as, in effect, parameter-passing goto statements, and no closure need be
constructed at run time.  If not all calls to the lambda-expression are
tail-recursive, it may be appropriate to compile the lambda-expression using
a special (fast) subroutine linkage ...  The binding analysis also
determines which variables can be stack-allocated and which must (because
they are referred to by closures) be heap-allocated."

Strategies assigned to each LambdaNode:

* ``STRATEGY_JUMP`` -- directly-called lambdas (``let``) and lambdas bound
  to an immutable variable whose every reference is a *tail* call: compiled
  in-line / as parameter-passing gotos.
* ``STRATEGY_FAST_CALL`` -- all call sites known but not all tail: a fast
  linkage that "can avoid error checks such as on the number of arguments".
* ``STRATEGY_FULL_CLOSURE`` -- the lambda escapes: a run-time closure object
  is built, and every free variable it captures is forced into a heap-
  allocated environment.
"""

from __future__ import annotations

from typing import Optional, Set

from ..analysis import free_variables
from ..ir.nodes import (
    CallNode,
    LambdaNode,
    Node,
    STRATEGY_FAST_CALL,
    STRATEGY_FULL_CLOSURE,
    STRATEGY_JUMP,
    Variable,
    VarRefNode,
)


def annotate_bindings(root: Node, enable: bool = True) -> None:
    """Assign a compilation strategy to every lambda and decide stack/heap
    allocation for every captured variable.

    With ``enable=False`` (the ablation configuration) every non-``let``
    lambda gets a full closure and every captured variable goes to the heap
    -- the "most general case" the paper starts from.
    """
    for node in root.walk():
        if isinstance(node, LambdaNode):
            node.strategy = STRATEGY_FULL_CLOSURE
            node.escapes = True
            node.known_calls = []

    for node in root.walk():
        if not isinstance(node, LambdaNode):
            continue
        if enable:
            _classify(node)
        _mark_heap_variables(node)


def _classify(node: LambdaNode) -> None:
    parent = node.parent
    # Case 1: the fn position of a call -- a let.  Compiled entirely in-line.
    if isinstance(parent, CallNode) and parent.fn is node:
        node.strategy = STRATEGY_JUMP
        node.escapes = False
        node.known_calls = [parent]
        return
    # Case 2: the lambda is an argument binding an immutable variable whose
    # references are all call heads: all call sites are known.
    binding = _bound_variable(node)
    if binding is not None and not binding.is_assigned() and not binding.special:
        refs = binding.refs
        if refs and all(_is_call_head(ref) for ref in refs):
            calls = [ref.parent for ref in refs]
            node.known_calls = calls  # type: ignore[assignment]
            node.escapes = False
            if all(call.is_tail_call or call.tail_position for call in calls):
                node.strategy = STRATEGY_JUMP
            else:
                node.strategy = STRATEGY_FAST_CALL
            return
    # General case: treat as escaping.
    node.strategy = STRATEGY_FULL_CLOSURE
    node.escapes = True


def _bound_variable(node: LambdaNode) -> Optional[Variable]:
    """If this lambda is the j-th argument of a simple let, the variable it
    will be bound to."""
    parent = node.parent
    if not isinstance(parent, CallNode):
        return None
    if not isinstance(parent.fn, LambdaNode) or not parent.fn.is_simple():
        return None
    if len(parent.args) != len(parent.fn.required):
        return None
    for variable, arg in zip(parent.fn.required, parent.args):
        if arg is node:
            return variable
    return None


def _is_call_head(ref: VarRefNode) -> bool:
    parent = ref.parent
    return isinstance(parent, CallNode) and parent.fn is ref


def _mark_heap_variables(node: LambdaNode) -> None:
    """Variables captured by an escaping lambda must live in the heap."""
    if not node.escapes:
        return
    for variable in free_variables(node):
        variable.heap_allocated = True


def closure_report(root: Node) -> dict:
    """Summary statistics used by the P5 experiment bench."""
    strategies = {"jump": 0, "fast-call": 0, "closure": 0}
    heap_vars: Set[Variable] = set()
    for node in root.walk():
        if isinstance(node, LambdaNode):
            key = {STRATEGY_JUMP: "jump", STRATEGY_FAST_CALL: "fast-call",
                   STRATEGY_FULL_CLOSURE: "closure"}[node.strategy]
            strategies[key] += 1
        if isinstance(node, VarRefNode) and node.variable.heap_allocated:
            heap_vars.add(node.variable)
    return {"strategies": strategies, "heap_variables": len(heap_vars)}
