"""Machine-dependent annotation phases (Table 1):

binding annotation, special-variable lookups, representation annotation,
and pdl-number annotation.  Target annotation (TNBIND/PACK) lives in
`repro.tnbind`.
"""

from .binding import annotate_bindings, closure_report
from .pdl import annotate_pdl, pdl_sites, wants_pdl_allocation
from .representation import (
    annotate_representations,
    boxing_sites,
    coercion_sites,
    representation_report,
)
from .specials import (
    SpecialCachePlan,
    annotate_special_lookups,
    lookup_cost_report,
)

from ..ir.nodes import Node
from ..options import CompilerOptions, DEFAULT_OPTIONS


def annotate(root: Node, options: CompilerOptions = DEFAULT_OPTIONS):
    """Run all machine-dependent annotations in the paper's order; returns
    the special-variable cache plans (the other phases decorate the tree)."""
    annotate_bindings(root, enable=options.enable_closure_analysis)
    plans = annotate_special_lookups(
        root, enable=options.enable_special_caching)
    annotate_representations(
        root, enable=options.enable_representation_analysis)
    annotate_pdl(root, enable=options.enable_pdl_numbers)
    return plans


__all__ = [
    "SpecialCachePlan",
    "annotate",
    "annotate_bindings",
    "annotate_pdl",
    "annotate_representations",
    "annotate_special_lookups",
    "boxing_sites",
    "closure_report",
    "coercion_sites",
    "lookup_cost_report",
    "pdl_sites",
    "representation_report",
    "wants_pdl_allocation",
]
