"""Source-level optimization: the meta-evaluator and the optional CSE phase."""

from .cse import eliminate_common_subexpressions
from .meta import SINC_FACTOR, SourceOptimizer, optimize_tree
from .transcript import Transcript, TranscriptEntry, render_node
from .treeutil import (
    RootHolder,
    fix_parents,
    refresh_variable_links,
    tree_equal,
)

__all__ = [
    "RootHolder",
    "SINC_FACTOR",
    "SourceOptimizer",
    "Transcript",
    "TranscriptEntry",
    "eliminate_common_subexpressions",
    "fix_parents",
    "optimize_tree",
    "refresh_variable_links",
    "render_node",
    "tree_equal",
]
