"""The source-level optimizer ("meta-evaluator").

Implements Section 5 of the paper.  The three most important transformations
are the three partial beta-conversion rules:

1. ``((lambda () body))  =>  body``
2. drop an unused parameter whose argument's only effect is (at most)
   heap allocation -- "a side effect that may be eliminated but must not be
   duplicated",
3. substitute an argument expression for occurrences of its parameter,
   "provided that certain complicated conditions regarding side effects are
   satisfied".

"Together the three rules constitute the lambda-calculus rule of
beta-conversion"; constant propagation and procedure integration fall out as
special cases, and boolean short-circuiting falls out of the nested-``if``
distribution rule plus simplification.

Each fired rule records a transcript entry in the style of the paper's
Section 7 compiler listing (``;**** Optimizing this form ... courtesy of
META-...``).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..analysis import analyze, analyze_light, may_be_duplicated, may_be_eliminated
from ..datum import NIL, T, gensym, lisp_equal, sym
from ..diagnostics import Diagnostics
from ..errors import LispError
from ..ir.nodes import (
    CallNode,
    CaseqNode,
    CatcherNode,
    FunctionRefNode,
    GoNode,
    IfNode,
    LambdaNode,
    LiteralNode,
    Node,
    PrognNode,
    ProgbodyNode,
    ReturnNode,
    SetqNode,
    TagMarker,
    Variable,
    VarRefNode,
    copy_tree,
)
from ..options import CompilerOptions, DEFAULT_OPTIONS
from ..primitives import Primitive, lookup_primitive
from .transcript import Transcript, render_node
from .treeutil import (
    RootHolder,
    fix_parents,
    refresh_variable_links,
    tree_equal,
)

# 1/(2*pi) rounded to the paper's printed precision: the conversion factor
# for the machine-inspired sin$f -> sinc$f rewrite (Section 7).
SINC_FACTOR = 0.159154942

_SIN_TO_CYCLES = {
    "sin$f": "sinc$f",
    "cos$f": "cosc$f",
}

_TYPE_SPECIALIZATIONS = {
    ("+", "SWFLO"): "+$f", ("-", "SWFLO"): "-$f",
    ("*", "SWFLO"): "*$f", ("/", "SWFLO"): "/$f",
    ("max", "SWFLO"): "max$f", ("min", "SWFLO"): "min$f",
    ("abs", "SWFLO"): "abs$f", ("sqrt", "SWFLO"): "sqrt$f",
    ("sin", "SWFLO"): "sin$f", ("cos", "SWFLO"): "cos$f",
    ("=", "SWFLO"): "=$f", ("<", "SWFLO"): "<$f", (">", "SWFLO"): ">$f",
    ("+", "SWFIX"): "+&", ("-", "SWFIX"): "-&", ("*", "SWFIX"): "*&",
    ("=", "SWFIX"): "=&", ("<", "SWFIX"): "<&", (">", "SWFIX"): ">&",
    ("<=", "SWFIX"): "<=&", (">=", "SWFIX"): ">=&",
}


class SourceOptimizer:
    """Fixpoint-driven source-to-source transformer."""

    def __init__(self, options: Optional[CompilerOptions] = None,
                 transcript: Optional[Transcript] = None,
                 global_functions: Optional[dict] = None,
                 diagnostics: Optional["Diagnostics"] = None):
        self.options = options or DEFAULT_OPTIONS
        self.transcript = transcript if transcript is not None else Transcript(
            self.options.transcript_stream if self.options.transcript else None,
            trace_rewrites=self.options.trace_rewrites)
        # Known defuns available for integration (block compilation).
        self.global_functions = global_functions or {}
        self.diagnostics = diagnostics
        #: True when the last optimize() ended without observing a fixpoint
        #: (pass budget or fuel ran out while rules were still firing).
        self.hit_pass_limit = False
        self._integration_counts: dict = {}
        self._fired = 0
        self._rules: List[Tuple[str, Callable[[Node], Optional[Node]], str]] = []
        self._build_rule_table()

    # -- public entry ---------------------------------------------------------

    def optimize(self, root: Node) -> Node:
        if not self.options.optimize:
            return root
        holder = RootHolder(root)
        if self.transcript.trace_rewrites:
            self.transcript.begin_root(render_node(holder.child))
        # Hard bound against rule-interaction cycles (self-expanding forms).
        self._fuel = self.options.optimizer_fuel
        self.hit_pass_limit = False
        changed = False
        for _pass in range(self.options.max_passes):
            refresh_variable_links(holder.child)
            fix_parents(holder.child)
            analyze(holder.child)
            changed = self._run_pass(holder)
            if not changed:
                break
            if self._fuel <= 0:
                break
        if changed:
            # The loop never saw a no-progress pass: the tree may still be
            # self-expanding.  Stop (bounded) and say so instead of silently
            # looping or over-firing.
            self.hit_pass_limit = True
            if self.diagnostics is not None:
                if self._fuel <= 0:
                    detail = (f"fuel exhausted after "
                              f"{self.options.optimizer_fuel} rule firings")
                else:
                    detail = f"stopped at max_passes={self.options.max_passes}"
                self.diagnostics.warn(
                    f"optimizer did not reach a fixpoint ({detail})",
                    phase="optimizer")
        return holder.child

    def rules_fired(self) -> List[str]:
        return self.transcript.rules_fired()

    # -- engine ---------------------------------------------------------------

    def _run_pass(self, holder: RootHolder) -> bool:
        changed_any = False
        progress = True
        while progress and self._fuel > 0:
            progress = False
            for node in list(holder.child.walk()):
                if not self._attached(node, holder):
                    continue
                replacement = self._try_rules(node)
                if replacement is not None:
                    self._fuel -= 1
                    if replacement is not node:
                        node.parent.replace_child(node, replacement)
                        fix_parents(replacement)
                    else:
                        fix_parents(node)
                    refresh_variable_links(holder.child)
                    analyze_light(holder.child)
                    if self.transcript.trace_rewrites:
                        # The tree has settled: stamp the whole-function
                        # snapshot onto the entry _fire just recorded.
                        self.transcript.attach_root(render_node(holder.child))
                    progress = True
                    changed_any = True
                    break
        return changed_any

    @staticmethod
    def _attached(node: Node, holder: RootHolder) -> bool:
        current: Optional[Node] = node
        while current is not None:
            if current is holder:
                return True
            current = current.parent
        return False

    def _try_rules(self, node: Node) -> Optional[Node]:
        for name, rule, gate in self._rules:
            if gate and not getattr(self.options, gate):
                continue
            result = rule(node)
            if result is not None:
                return result
        return None

    def _fire(self, rule: str, before: str, after: Node) -> Node:
        self._fired += 1
        self.transcript.record(rule, before, render_node(after))
        return after

    def _build_rule_table(self) -> None:
        # Order matters: cheap structural simplifications first, the
        # expensive substitution machinery last.
        self._rules = [
            ("META-IF-CONSTANT", self._rule_if_constant, "enable_dead_code"),
            ("META-PROGN-SIMPLIFY", self._rule_progn_simplify, "enable_dead_code"),
            ("META-DEAD-CASEQ", self._rule_dead_caseq, "enable_dead_code"),
            ("META-PROGBODY-SIMPLIFY", self._rule_progbody_simplify,
             "enable_dead_code"),
            ("META-EVALUATE-CONSTANT-CALL", self._rule_constant_fold,
             "enable_constant_folding"),
            ("META-EVALUATE-ASSOC-COMMUT-CALL", self._rule_assoc_commut,
             "enable_assoc_commut"),
            ("CONSIDER-REVERSING-ARGUMENTS", self._rule_reverse_arguments,
             "enable_argument_reversal"),
            ("META-SIN-TO-SINC", self._rule_sin_to_sinc, "enable_sin_to_sinc"),
            ("META-TYPE-SPECIALIZE", self._rule_type_specialize,
             "enable_type_specialization"),
            ("META-IF-SAME-TEST", self._rule_if_same_test, "enable_dead_code"),
            ("META-IF-PROGN-TEST", self._rule_if_progn_test, "enable_beta"),
            ("META-IF-LET-TEST", self._rule_if_let_test, "enable_beta"),
            ("META-IF-IF", self._rule_if_if, "enable_if_distribution"),
            ("META-INTEGRATE-GLOBAL", self._rule_integrate_global,
             "enable_global_integration"),
            ("META-CALL-LAMBDA", self._rule_call_lambda, "enable_beta"),
            ("META-DROP-UNUSED-ARGUMENT", self._rule_drop_unused, "enable_beta"),
            ("META-SUBSTITUTE", self._rule_substitute, "enable_beta"),
        ]

    # -- simple conditional rules ----------------------------------------------

    def _rule_if_constant(self, node: Node) -> Optional[Node]:
        """(if 'const x y) => x or y  (dead-code elimination)."""
        if not isinstance(node, IfNode) or not isinstance(node.test, LiteralNode):
            return None
        chosen = node.else_ if node.test.value is NIL else node.then
        before = render_node(node)
        return self._fire("META-IF-CONSTANT", before, chosen)

    def _rule_progn_simplify(self, node: Node) -> Optional[Node]:
        """Flatten nested progn; drop effect-free non-final forms."""
        if not isinstance(node, PrognNode):
            return None
        forms: List[Node] = []
        changed = False
        for i, form in enumerate(node.forms):
            is_last = i == len(node.forms) - 1
            if isinstance(form, PrognNode):
                forms.extend(form.forms)
                changed = True
            elif not is_last and may_be_eliminated(form) and not form.writes:
                # Effect-free AND writes no lexical variable (a setq of a
                # lexical is invisible to the effects lattice but not dead).
                changed = True  # dropped
            else:
                forms.append(form)
        if len(forms) == 1:
            before = render_node(node)
            return self._fire("META-PROGN-SIMPLIFY", before, forms[0])
        if not changed:
            return None
        before = render_node(node)
        return self._fire("META-PROGN-SIMPLIFY", before, PrognNode(forms))

    def _rule_dead_caseq(self, node: Node) -> Optional[Node]:
        """caseq with a constant key selects its clause at compile time."""
        if not isinstance(node, CaseqNode) or not isinstance(node.key, LiteralNode):
            return None
        from ..datum.numbers import lisp_eql

        key = node.key.value
        before = render_node(node)
        for keys, body in node.clauses:
            if any(lisp_eql(key, k) for k in keys):
                return self._fire("META-DEAD-CASEQ", before, body)
        return self._fire("META-DEAD-CASEQ", before, node.default)

    def _rule_progbody_simplify(self, node: Node) -> Optional[Node]:
        """A progbody with no tags and no local go/return is a progn (value
        nil); also drops statements made unreachable by an unconditional go."""
        if not isinstance(node, ProgbodyNode):
            return None
        has_tags = any(isinstance(item, TagMarker) for item in node.items)
        has_exits = any(
            (isinstance(n, GoNode) or isinstance(n, ReturnNode))
            and n.target is node
            for n in node.walk()
        )
        if not has_tags and not has_exits:
            before = render_node(node)
            forms = [item for item in node.items if isinstance(item, Node)]
            forms.append(LiteralNode(NIL))
            return self._fire("META-PROGBODY-SIMPLIFY", before,
                              PrognNode(forms))
        # Unreachable statement removal: anything between a top-level go /
        # return and the next tag can never run.
        items: List[Any] = []
        dropping = False
        changed = False
        for item in node.items:
            if isinstance(item, TagMarker):
                dropping = False
                items.append(item)
                continue
            if dropping:
                changed = True
                continue
            items.append(item)
            if isinstance(item, GoNode) or isinstance(item, ReturnNode):
                dropping = True
        if not changed:
            return None
        before = render_node(node)
        replacement = ProgbodyNode([])
        replacement.items = items
        for item in items:
            if isinstance(item, Node):
                item.parent = replacement
        # Retarget surviving local gos/returns at the replacement node.
        for descendant in replacement.walk():
            if isinstance(descendant, (GoNode, ReturnNode)) \
                    and descendant.target is node:
                descendant.target = replacement
        return self._fire("META-PROGBODY-SIMPLIFY", before, replacement)

    # -- constant folding and algebraic rules -----------------------------------

    def _primitive_of(self, node: Node) -> Optional[Primitive]:
        if isinstance(node, CallNode) and isinstance(node.fn, FunctionRefNode):
            return lookup_primitive(node.fn.name)
        return None

    def _rule_constant_fold(self, node: Node) -> Optional[Node]:
        """Compile-time expression evaluation: "invoking primitive functions
        known to be free of side effects on constant operands, a very
        convenient thing to do in LISP with the apply operator!"."""
        primitive = self._primitive_of(node)
        if primitive is None or not primitive.pure or primitive.allocates:
            return None
        assert isinstance(node, CallNode)
        if not all(isinstance(arg, LiteralNode) for arg in node.args):
            return None
        try:
            value = primitive.apply([arg.value for arg in node.args])
        except LispError:
            return None  # fold would signal at run time; leave it alone
        before = render_node(node)
        return self._fire("META-EVALUATE-CONSTANT-CALL", before,
                          LiteralNode(value))

    def _rule_assoc_commut(self, node: Node) -> Optional[Node]:
        """Table-driven handling of associative/commutative operators:
        identity-operand elimination, constant merging, and reduction of
        n-ary calls to compositions of two-argument calls."""
        primitive = self._primitive_of(node)
        if primitive is None or not primitive.associative:
            return None
        assert isinstance(node, CallNode)
        args = list(node.args)

        # Identity elimination (only with a known identity element).
        if primitive.identity is not None and len(args) >= 1:
            kept = [a for a in args
                    if not (isinstance(a, LiteralNode)
                            and lisp_equal(a.value, primitive.identity))]
            if len(kept) != len(args) and kept:
                before = render_node(node)
                if len(kept) == 1:
                    return self._fire("META-EVALUATE-ASSOC-COMMUT-CALL",
                                      before, kept[0])
                return self._fire(
                    "META-EVALUATE-ASSOC-COMMUT-CALL", before,
                    CallNode(FunctionRefNode(node.fn.name), kept))
            if not kept and args:
                before = render_node(node)
                return self._fire("META-EVALUATE-ASSOC-COMMUT-CALL", before,
                                  LiteralNode(primitive.identity))

        # Constant merging for commutative operators.
        if primitive.commutative and primitive.pure:
            literals = [a for a in args if isinstance(a, LiteralNode)]
            others = [a for a in args if not isinstance(a, LiteralNode)]
            if len(literals) >= 2 and others:
                try:
                    merged = primitive.apply([l.value for l in literals])
                except LispError:
                    merged = None
                if merged is not None:
                    before = render_node(node)
                    new_args = [LiteralNode(merged)] + others
                    return self._fire(
                        "META-EVALUATE-ASSOC-COMMUT-CALL", before,
                        CallNode(FunctionRefNode(node.fn.name), new_args))

        # Reduce n-ary (n > 2) to nested binary calls.  The paper's example:
        # (+$f a b c) => (+$f (+$f c b) a).
        if len(args) > 2:
            before = render_node(node)
            acc: Node = args[-1]
            for arg in args[-2::-1]:
                acc = CallNode(FunctionRefNode(node.fn.name), [acc, arg])
            return self._fire("META-EVALUATE-ASSOC-COMMUT-CALL", before, acc)
        return None

    def _rule_reverse_arguments(self, node: Node) -> Optional[Node]:
        """"By convention constant arguments are put first where possible"
        to promote compile-time expression evaluation."""
        primitive = self._primitive_of(node)
        if primitive is None or not primitive.commutative:
            return None
        assert isinstance(node, CallNode)
        if len(node.args) != 2:
            return None
        first, second = node.args
        if isinstance(second, LiteralNode) and not isinstance(first, LiteralNode):
            before = render_node(node)
            return self._fire(
                "CONSIDER-REVERSING-ARGUMENTS", before,
                CallNode(FunctionRefNode(node.fn.name), [second, first]))
        return None

    def _rule_sin_to_sinc(self, node: Node) -> Optional[Node]:
        """sin$f (radians) -> sinc$f (cycles): "machine-independent but
        machine-inspired: the S-1 SIN instruction assumes its argument to be
        in cycles.  The conversion factor is a floating-point approximation
        to 1/2pi".  On targets whose sine takes radians the rewrite is
        "benign but useless", so it is switched off (Section 4.4's remark
        about transformations slanted toward the S-1)."""
        from ..target.machines import get_target

        if not get_target(self.options.target).sin_in_cycles:
            return None
        if not isinstance(node, CallNode) or len(node.args) != 1:
            return None
        if not isinstance(node.fn, FunctionRefNode):
            return None
        target = _SIN_TO_CYCLES.get(node.fn.name.name)
        if target is None:
            return None
        before = render_node(node)
        product = CallNode(FunctionRefNode(sym("*$f")),
                           [node.args[0], LiteralNode(SINC_FACTOR)])
        return self._fire("META-SIN-TO-SINC", before,
                          CallNode(FunctionRefNode(sym(target)), [product]))

    def _rule_type_specialize(self, node: Node) -> Optional[Node]:
        """Extension (the paper marks it future work): rewrite generic
        arithmetic to type-specific operators when argument types are known."""
        if not isinstance(node, CallNode) or not isinstance(node.fn, FunctionRefNode):
            return None
        if not node.args:
            return None
        arg_types = {arg.inferred_type for arg in node.args}
        if len(arg_types) != 1 or None in arg_types:
            return None
        target = _TYPE_SPECIALIZATIONS.get((node.fn.name.name, arg_types.pop()))
        if target is None:
            return None
        target_primitive = lookup_primitive(sym(target))
        if target_primitive is None:
            return None
        count = len(node.args)
        if count < target_primitive.min_args or (
                target_primitive.max_args is not None
                and count > target_primitive.max_args):
            return None
        before = render_node(node)
        return self._fire("META-TYPE-SPECIALIZE", before,
                          CallNode(FunctionRefNode(sym(target)),
                                   list(node.args)))

    # -- conditional distribution ------------------------------------------------

    def _rule_if_same_test(self, node: Node) -> Optional[Node]:
        """Within (if v ...) where v is an immutable variable, an inner
        (if v x y) is decided: x in the then-arm, y in the else-arm --
        "realizing that b is true in the inner if by virtue of the test in
        the outer one"."""
        if not isinstance(node, IfNode) or not isinstance(node.test, VarRefNode):
            return None
        variable = node.test.variable
        if variable.is_assigned() or variable.special:
            return None
        for arm, truth in ((node.then, True), (node.else_, False)):
            for inner in arm.walk():
                if (isinstance(inner, IfNode)
                        and isinstance(inner.test, VarRefNode)
                        and inner.test.variable is variable):
                    before = render_node(node)
                    chosen = inner.then if truth else inner.else_
                    inner.parent.replace_child(inner, chosen)
                    return self._fire("META-IF-SAME-TEST", before, node)
        # Also: (if v v y) in the then position collapses the then arm when
        # the *whole arm* is the same variable -- nothing to do; and in the
        # else arm, a bare v is known nil.
        if (isinstance(node.else_, VarRefNode)
                and node.else_.variable is variable):
            before = render_node(node)
            replacement = IfNode(node.test, node.then, LiteralNode(NIL))
            return self._fire("META-IF-SAME-TEST", before, replacement)
        return None

    def _rule_if_progn_test(self, node: Node) -> Optional[Node]:
        """(if (progn a... p) x y) => (progn a... (if p x y)) -- one of the
        semi-canonicalizing transformations."""
        if not isinstance(node, IfNode) or not isinstance(node.test, PrognNode):
            return None
        before = render_node(node)
        progn = node.test
        inner_if = IfNode(progn.forms[-1], node.then, node.else_)
        replacement = PrognNode(progn.forms[:-1] + [inner_if])
        return self._fire("META-IF-PROGN-TEST", before, replacement)

    def _rule_if_let_test(self, node: Node) -> Optional[Node]:
        """(if ((lambda (v...) p) a...) x y) =>
        ((lambda (v...) (if p x y)) a...)

        "valid only because all variables ... have effectively been uniformly
        renamed to prevent scoping problems" -- our Variable objects make
        capture impossible by construction."""
        if not isinstance(node, IfNode):
            return None
        test = node.test
        if not (isinstance(test, CallNode) and isinstance(test.fn, LambdaNode)
                and test.fn.is_simple()
                and len(test.args) == len(test.fn.required)):
            return None
        before = render_node(node)
        inner_lambda = test.fn
        new_body = IfNode(inner_lambda.body, node.then, node.else_)
        new_lambda = LambdaNode(inner_lambda.required, [], None, new_body,
                                name_hint=inner_lambda.name_hint)
        return self._fire("META-IF-LET-TEST", before,
                          CallNode(new_lambda, list(test.args)))

    def _rule_if_if(self, node: Node) -> Optional[Node]:
        """The nested-if distribution (Section 5):

        (if (if x y z) v w) =>
        ((lambda (f g) (if x (if y (f) (g)) (if z (f) (g))))
         (lambda () v) (lambda () w))

        "The functions f and g are introduced to avoid space-wasting
        duplication of the code for v and w."  When v and w are cheap and
        duplicable we skip the thunks and duplicate directly.
        """
        if not isinstance(node, IfNode) or not isinstance(node.test, IfNode):
            return None
        before = render_node(node)
        inner = node.test
        x, y, z = inner.test, inner.then, inner.else_
        v, w = node.then, node.else_

        cheap = (may_be_duplicated(v) and may_be_duplicated(w)
                 and (v.complexity or 99) <= 2 and (w.complexity or 99) <= 2)
        if cheap:
            replacement: Node = IfNode(
                x,
                IfNode(y, copy_tree(v), copy_tree(w)),
                IfNode(z, copy_tree(v), copy_tree(w)),
            )
            return self._fire("META-IF-IF", before, replacement)

        f_var = Variable(gensym("f"))
        g_var = Variable(gensym("g"))

        def call_thunk(variable: Variable) -> Node:
            return CallNode(VarRefNode(variable), [])

        body = IfNode(
            x,
            IfNode(y, call_thunk(f_var), call_thunk(g_var)),
            IfNode(z, call_thunk(f_var), call_thunk(g_var)),
        )
        wrapper = LambdaNode([f_var, g_var], [], None, body)
        replacement = CallNode(wrapper, [
            LambdaNode([], [], None, v),
            LambdaNode([], [], None, w),
        ])
        return self._fire("META-IF-IF", before, replacement)

    def _rule_integrate_global(self, node: Node) -> Optional[Node]:
        """Procedure integration across defuns (block compilation).

        "Another [special case of beta-conversion] is procedure integration
        ... If a (tail-)recursive procedure definition is used to achieve
        iteration, then integration of the procedure within itself achieves
        loop unrolling."  The paper's heuristics were "so conservative as to
        avoid loop unrolling completely"; ours are gated by
        ``self_unroll_depth`` (the "more discriminating decision procedure"
        the paper says is all that is needed).

        Integration freezes the callee's current definition into the caller
        (the standard block-compilation trade-off).
        """
        if not (isinstance(node, CallNode)
                and isinstance(node.fn, FunctionRefNode)):
            return None
        name = node.fn.name
        if lookup_primitive(name) is not None:
            return None
        target = self.global_functions.get(name)
        if target is None or not isinstance(target, LambdaNode):
            return None
        if not target.is_simple() or len(node.args) != len(target.required):
            return None
        if target.complexity is None:
            analyze(target)
        if (target.complexity or 999) > self.options.global_integration_limit:
            return None
        # Per-name fuel: every call site may integrate once; a function may
        # additionally integrate *itself* self_unroll_depth times.
        used = self._integration_counts.get(name, 0)
        budget = 4 + self.options.self_unroll_depth * 4
        if used >= budget:
            return None
        self._integration_counts[name] = used + 1
        before = render_node(node)
        clone = copy_tree(target)
        assert isinstance(clone, LambdaNode)
        return self._fire("META-INTEGRATE-GLOBAL", before,
                          CallNode(clone, list(node.args)))

    # -- the three beta rules ------------------------------------------------------

    def _rule_call_lambda(self, node: Node) -> Optional[Node]:
        """Rule 1: ((lambda () body)) => body."""
        if not (isinstance(node, CallNode) and isinstance(node.fn, LambdaNode)):
            return None
        fn = node.fn
        if fn.required or fn.optionals or fn.rest is not None or node.args:
            return None
        before = render_node(node)
        return self._fire("META-CALL-LAMBDA", before, fn.body)

    def _rule_drop_unused(self, node: Node) -> Optional[Node]:
        """Rule 2: drop parameter vj and argument aj when vj is unreferenced
        in the body and aj's execution has no side effects "(except possibly
        heap-allocation, which ... may be eliminated but must not be
        duplicated)"."""
        let = self._simple_let(node)
        if let is None:
            return None
        fn, args = let
        keep_vars: List[Variable] = []
        keep_args: List[Node] = []
        dropped = False
        for variable, arg in zip(fn.required, args):
            # A special parameter's *binding* is itself an observable
            # effect (dynamic scope): never dropped, referenced or not.
            unused = (not variable.refs and not variable.setqs
                      and not variable.special)
            if unused and may_be_eliminated(arg) and not arg.writes:
                dropped = True
                continue
            keep_vars.append(variable)
            keep_args.append(arg)
        if not dropped:
            return None
        before = render_node(node)
        new_lambda = LambdaNode(keep_vars, [], None, fn.body,
                                name_hint=fn.name_hint)
        return self._fire("META-DROP-UNUSED-ARGUMENT", before,
                          CallNode(new_lambda, keep_args))

    def _rule_substitute(self, node: Node) -> Optional[Node]:
        """Rule 3: replace occurrences of vj in the body with aj.

        Permissible when vj is never assigned and one of:

        * aj is a constant or function reference (constant propagation),
        * aj is an immutable variable reference (renaming),
        * aj is a lambda-expression and vj has one reference or the lambda
          is small (procedure integration),
        * aj is pure and either vj has a single reference or aj is small
          enough to duplicate.

        The argument stays in place; rule 2 eliminates it on a later
        iteration once the references are gone ("This requires some
        collusion").
        """
        let = self._simple_let(node)
        if let is None:
            return None
        fn, args = let
        opts = self.options
        plan: Optional[Tuple[Variable, Node]] = None
        for variable, arg in zip(fn.required, args):
            if variable.is_assigned() or variable.special or not variable.refs:
                continue
            refcount = len(variable.refs)
            substitutable = False
            if isinstance(arg, (LiteralNode, FunctionRefNode)):
                substitutable = True
            elif isinstance(arg, VarRefNode) and not arg.variable.is_assigned() \
                    and not arg.variable.special:
                substitutable = True
            elif isinstance(arg, LambdaNode):
                # Lambdas close over variables (not values), so moving the
                # lambda-expression past assignments is safe.
                if opts.enable_procedure_integration and (
                        refcount == 1
                        or (arg.complexity or 999) <= opts.integration_size_limit):
                    substitutable = True
            elif may_be_duplicated(arg) and not arg.writes \
                    and all(not v.is_assigned() for v in (arg.reads or ())):
                # Moving the expression to its use sites changes *when* it
                # reads its variables; any of them being assigned anywhere
                # makes that reordering observable (the "complicated
                # conditions regarding side effects").
                # "Right now the heuristics for introduction are relatively
                # conservative": a non-trivial pure expression moves to its
                # single use site, but is only *duplicated* into several
                # sites when the total copied code stays under the limit.
                copies_cost = (refcount - 1) * (arg.complexity or 999)
                if refcount == 1 or copies_cost <= opts.substitution_size_limit:
                    substitutable = True
            if substitutable:
                plan = (variable, arg)
                break
        if plan is None:
            return None
        variable, arg = plan
        count = len(variable.refs)
        for ref in list(variable.refs):
            if ref.parent is None:
                continue
            ref.parent.replace_child(ref, copy_tree(arg))
        self.transcript.record(
            "META-SUBSTITUTE",
            f"{count} substitution{'s' if count != 1 else ''} for the variable"
            f" {variable.name} by {render_node(arg)}",
            render_node(node))
        self._fired += 1
        return node

    def _simple_let(self, node: Node) -> Optional[Tuple[LambdaNode, List[Node]]]:
        """Match ((lambda (v1..vn) body) a1..an) with a simple lambda list."""
        if not (isinstance(node, CallNode) and isinstance(node.fn, LambdaNode)):
            return None
        fn = node.fn
        if not fn.is_simple() or len(node.args) != len(fn.required):
            return None
        return fn, list(node.args)


def optimize_tree(root: Node, options: Optional[CompilerOptions] = None,
                  transcript: Optional[Transcript] = None) -> Node:
    """Convenience wrapper: run the source optimizer over a tree."""
    optimizer = SourceOptimizer(options, transcript)
    return optimizer.optimize(root)
