"""Equality-saturation optimizer backend (``optimizer_backend="egraph"``).

Layout:

* :mod:`.core` -- the e-graph itself (union-find, hashcons, congruence
  closure, cost-based extraction), IR-agnostic;
* :mod:`.term` -- Table 2 tree <-> hashable term conversion with
  capture-safe binder freshening;
* :mod:`.cost` -- per-target cycle cost model over ``repro.target``'s
  cycle tables;
* :mod:`.backend` -- the saturation loop: seed with the ordered result,
  apply the meta.py rule inventory non-destructively, extract the
  cheapest program for the selected target.
"""

from .backend import EGraphOptimizer, add_term, build_term, make_optimizer
from .core import EClass, EGraph, ENode, extract_costs
from .cost import CycleCostModel
from .term import Term, TermContext, term_to_tree, tree_to_term

__all__ = [
    "CycleCostModel",
    "EClass",
    "EGraph",
    "EGraphOptimizer",
    "ENode",
    "Term",
    "TermContext",
    "add_term",
    "build_term",
    "extract_costs",
    "make_optimizer",
    "term_to_tree",
    "tree_to_term",
]
