"""Terms: the bridge between the mutable IR and the hashcons'd e-graph.

A *term* is an immutable, hashable rendering of a Table 2 subtree:
``(op, child_term, ...)`` nested tuples, where ``op`` is the payload the
e-graph stores on its e-nodes (constructor tag plus leaf data).  Two
design points carry all the weight:

* **Variables are identity.**  A ``("var", Variable)`` payload holds the
  actual :class:`~repro.ir.nodes.Variable` object, so hashconsing only
  ever identifies two occurrences of *the same* binding -- the
  conversion-time alpha-renaming ("with every distinct variable ... is
  associated a little data structure") keeps term equality capture-safe
  for free.  The same goes for ``progbody`` targets: ``go``/``return``
  payloads carry the original :class:`ProgbodyNode`, and reconstruction
  rebinds them to the freshly built progbody in scope.

* **Reconstruction freshens binders.**  ``term_to_tree`` allocates a new
  :class:`Variable` for every binding it rebuilds and threads a scope
  environment through the recursion, so even if extraction ever picks the
  same lambda class twice the resulting tree is properly alpha-renamed --
  no two lambdas in a reconstructed tree share a binding.

Unhashable literal payloads (list structure and friends) are interned in
a :class:`TermContext` under a structural key; reconstruction returns the
original value object, so literals round-trip exactly regardless of how
they print.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...datum import Cons
from ...datum.symbols import Symbol
from ...ir.nodes import (
    CallNode,
    CaseqNode,
    CatcherNode,
    FunctionRefNode,
    GoNode,
    IfNode,
    LambdaNode,
    LiteralNode,
    Node,
    OptionalParam,
    PrognNode,
    ProgbodyNode,
    ReturnNode,
    SetqNode,
    TagMarker,
    Variable,
    VarRefNode,
)

Term = Tuple[Any, ...]  # (op, *child_terms)


class TermContext:
    """Shared interning table for one e-graph run: structural literal key
    -> the original value object (used to rebuild LiteralNodes and caseq
    clause keys exactly)."""

    def __init__(self) -> None:
        self.values: Dict[Any, Any] = {}

    def intern(self, value: Any) -> Any:
        key = datum_key(value)
        self.values.setdefault(key, value)
        return key

    def value(self, key: Any) -> Any:
        return self.values[key]


def datum_key(value: Any) -> Any:
    """A hashable structural key for a literal datum.  Two values with the
    same key are interchangeable as compile-time constants."""
    if isinstance(value, Symbol):
        return ("sym", value)
    if isinstance(value, bool):  # pragma: no cover - not a Lisp datum
        return ("bool", value)
    if isinstance(value, int):
        return ("int", value)
    if isinstance(value, float):
        return ("float", value)
    if isinstance(value, str):
        return ("str", value)
    if isinstance(value, Cons):
        return ("cons", datum_key(value.car), datum_key(value.cdr))
    # Vectors and other mutable data: identity (no cross-sharing, which is
    # the conservative direction for mutable constants).
    return ("obj", id(value))


# ---------------------------------------------------------------------------
# tree -> term


def tree_to_term(node: Node, ctx: TermContext) -> Term:
    if isinstance(node, LiteralNode):
        return (("lit", ctx.intern(node.value)),)
    if isinstance(node, VarRefNode):
        return (("var", node.variable),)
    if isinstance(node, FunctionRefNode):
        return (("fref", node.name),)
    if isinstance(node, IfNode):
        return (("if",), tree_to_term(node.test, ctx),
                tree_to_term(node.then, ctx), tree_to_term(node.else_, ctx))
    if isinstance(node, CallNode):
        return (("call",), tree_to_term(node.fn, ctx),
                *[tree_to_term(arg, ctx) for arg in node.args])
    if isinstance(node, PrognNode):
        return (("progn",), *[tree_to_term(f, ctx) for f in node.forms])
    if isinstance(node, SetqNode):
        return (("setq", node.variable), tree_to_term(node.value, ctx))
    if isinstance(node, LambdaNode):
        spec = (tuple(node.required),
                tuple(opt.variable for opt in node.optionals),
                node.rest, node.name_hint)
        defaults = [tree_to_term(opt.default, ctx) for opt in node.optionals]
        return (("lambda", spec), *defaults, tree_to_term(node.body, ctx))
    if isinstance(node, ProgbodyNode):
        layout = tuple(("tag", item.name) if isinstance(item, TagMarker)
                       else "form" for item in node.items)
        forms = [tree_to_term(item, ctx) for item in node.items
                 if isinstance(item, Node)]
        return (("progbody", node, layout), *forms)
    if isinstance(node, GoNode):
        return (("go", node.tag, node.target),)
    if isinstance(node, ReturnNode):
        return (("return", node.target), tree_to_term(node.value, ctx))
    if isinstance(node, CaseqNode):
        keys_spec = tuple(tuple(ctx.intern(k) for k in keys)
                          for keys, _body in node.clauses)
        return (("caseq", keys_spec), tree_to_term(node.key, ctx),
                *[tree_to_term(body, ctx) for _keys, body in node.clauses],
                tree_to_term(node.default, ctx))
    if isinstance(node, CatcherNode):
        return (("catcher",), tree_to_term(node.tag, ctx),
                tree_to_term(node.body, ctx))
    raise TypeError(f"cannot convert node {node!r} to a term")


# ---------------------------------------------------------------------------
# term -> tree


def term_to_tree(term: Term, ctx: TermContext) -> Node:
    """Rebuild an IR tree from a term, freshening every binder."""
    return _build(term, ctx, {}, {})


def _build(term: Term, ctx: TermContext,
           env: Dict[Variable, Variable],
           pbenv: Dict[ProgbodyNode, ProgbodyNode]) -> Node:
    op = term[0]
    tag = op[0]
    if tag == "lit":
        return LiteralNode(ctx.value(op[1]))
    if tag == "var":
        return VarRefNode(env.get(op[1], op[1]))
    if tag == "fref":
        return FunctionRefNode(op[1])
    if tag == "if":
        return IfNode(_build(term[1], ctx, env, pbenv),
                      _build(term[2], ctx, env, pbenv),
                      _build(term[3], ctx, env, pbenv))
    if tag == "call":
        return CallNode(_build(term[1], ctx, env, pbenv),
                        [_build(t, ctx, env, pbenv) for t in term[2:]])
    if tag == "progn":
        return PrognNode([_build(t, ctx, env, pbenv) for t in term[1:]])
    if tag == "setq":
        return SetqNode(env.get(op[1], op[1]),
                        _build(term[1], ctx, env, pbenv))
    if tag == "lambda":
        return _build_lambda(op[1], term[1:], ctx, env, pbenv)
    if tag == "progbody":
        return _build_progbody(op, term[1:], ctx, env, pbenv)
    if tag == "go":
        _go_tag, go_target = op[1], op[2]
        return GoNode(_go_tag, pbenv.get(go_target, go_target))
    if tag == "return":
        return ReturnNode(_build(term[1], ctx, env, pbenv),
                          pbenv.get(op[1], op[1]))
    if tag == "caseq":
        keys_spec = op[1]
        key = _build(term[1], ctx, env, pbenv)
        bodies = [_build(t, ctx, env, pbenv) for t in term[2:-1]]
        default = _build(term[-1], ctx, env, pbenv)
        clauses = [(tuple(ctx.value(k) for k in keys), body)
                   for keys, body in zip(keys_spec, bodies)]
        return CaseqNode(key, clauses, default)
    if tag == "catcher":
        return CatcherNode(_build(term[1], ctx, env, pbenv),
                           _build(term[2], ctx, env, pbenv))
    raise TypeError(f"cannot rebuild term op {op!r}")


def _fresh(variable: Variable) -> Variable:
    clone = Variable(variable.name, special=variable.special)
    clone.declared_type = variable.declared_type
    return clone


def _build_lambda(spec, children, ctx, env, pbenv) -> LambdaNode:
    required_vars, optional_vars, rest_var, name_hint = spec
    saved: Dict[Variable, Optional[Variable]] = {}

    def bind(variable: Variable) -> Variable:
        if variable not in saved:
            saved[variable] = env.get(variable)
        fresh = _fresh(variable)
        env[variable] = fresh
        return fresh

    required = [bind(v) for v in required_vars]
    optionals: List[OptionalParam] = []
    # A default may refer to parameters bound earlier in the same lambda
    # list, so each parameter enters scope before the *next* default is
    # built (its own default sees only the earlier ones -- build first,
    # bind second).
    for index, variable in enumerate(optional_vars):
        default = _build(children[index], ctx, env, pbenv)
        optionals.append(OptionalParam(bind(variable), default))
    rest = bind(rest_var) if rest_var is not None else None
    body = _build(children[-1], ctx, env, pbenv)
    for variable, previous in saved.items():
        if previous is None:
            env.pop(variable, None)
        else:
            env[variable] = previous
    return LambdaNode(required, optionals, rest, body, name_hint=name_hint)


def _build_progbody(op, children, ctx, env, pbenv) -> ProgbodyNode:
    payload, layout = op[1], op[2]
    rebuilt = ProgbodyNode([])
    rebuilt.items = []
    previous = pbenv.get(payload)
    pbenv[payload] = rebuilt
    child_iter = iter(children)
    for entry in layout:
        if isinstance(entry, tuple) and entry[0] == "tag":
            rebuilt.items.append(TagMarker(entry[1]))
        else:
            item = _build(next(child_iter), ctx, env, pbenv)
            item.parent = rebuilt
            rebuilt.items.append(item)
    if previous is None:
        pbenv.pop(payload, None)
    else:
        pbenv[payload] = previous
    return rebuilt
