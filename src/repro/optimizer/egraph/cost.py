"""Per-target cycle costs for e-graph extraction.

The extractor ranks e-nodes by an estimate of the cycles the emitted code
would spend evaluating them, read from the same per-target cycle tables
(``MachineDescription.cycles``) the simulator charges -- so the same
saturated e-graph extracts different winners on s1, vax, and pdp10
(e.g. ``sin$f`` -> ``sinc$f`` pays off only where the hardware sine takes
its argument in cycles and ``FSIN`` undercuts ``FSINR``).

Two structural requirements, beyond "smaller is better":

* **Strict monotonicity.**  Every operator costs strictly more than the
  sum of its children's costs (every base cost is at least ``EPSILON``).
  That makes the cost function admissible for e-graphs with cycles: the
  chosen-node graph of a finished extraction can never contain a cycle,
  so reconstruction always terminates.

* **Call-head inspection.**  The cost of a ``call`` depends on what the
  function position resolves to (an inlined primitive instruction, a
  let-binding lambda, or an out-of-line global call), so the model looks
  into the function child's e-class for a ``fref``/``lambda`` e-node.
"""

from __future__ import annotations

from typing import List, Optional

from ...primitives import lookup_primitive
from ...target import get_target
from .core import EGraph, ENode

#: Floor on every operator's own contribution; keeps extraction strictly
#: monotone (see module docstring).  Small enough never to flip a choice
#: between genuinely different cycle counts (which differ by >= 1).
EPSILON = 0.125


class CycleCostModel:
    """``cost_fn`` for :func:`.core.extract_costs`, parameterized by
    target.  Set :attr:`graph` before extraction (the call-head rule needs
    to inspect e-classes)."""

    def __init__(self, target) -> None:
        self.target = get_target(target)
        self.graph: Optional[EGraph] = None

    def _cycles(self, opcode: str, default: int = 2) -> float:
        return float(self.target.cycles.get(opcode, default))

    def _head_of(self, fn_class: int):
        """The first ``fref``/``lambda`` payload in the function-position
        e-class, if any (deterministic: classes keep insertion order)."""
        if self.graph is None:
            return None
        for node in self.graph.nodes_of(fn_class):
            tag = node.op[0]
            if tag in ("fref", "lambda"):
                return node.op
        return None

    def _call_cost(self, node: ENode, child_costs: List[float]) -> float:
        args = child_costs[1:]
        head = self._head_of(node.children[0])
        if head is not None and head[0] == "fref":
            primitive = lookup_primitive(head[1])
            if primitive is not None:
                if primitive.machine_op and \
                        primitive.machine_op in self.target.cycles:
                    op_cost = self._cycles(primitive.machine_op)
                else:
                    op_cost = self._cycles("GENERIC") + primitive.cycles
                return sum(args) + op_cost + EPSILON
            # Out-of-line global call: argument moves plus the call itself.
            return sum(args) + len(args) * self._cycles("MOV", 1) \
                + self._cycles("CALL", 4) + EPSILON
        if head is not None and head[0] == "lambda":
            # A let: one move per binding; the body cost is already inside
            # the lambda child's cost.
            return sum(child_costs) + len(args) * self._cycles("MOV", 1) \
                + EPSILON
        # Computed function value: closure-call path.
        return sum(child_costs) + len(args) * self._cycles("MOV", 1) \
            + self._cycles("CALLF", self.target.cycles.get("CALL", 4) + 2) \
            + EPSILON

    def __call__(self, node: ENode, child_costs: List[float]) -> float:
        tag = node.op[0]
        if tag == "lit":
            # Codegen folds literals into immediate operands (`(imm, v)`),
            # so a literal costs no instruction of its own; out-of-line
            # calls charge their per-argument MOV in _call_cost instead.
            return EPSILON
        if tag in ("var", "fref"):
            return self._cycles("MOV", 1) + EPSILON
        if tag == "setq":
            return child_costs[0] + self._cycles("MOV", 1) + EPSILON
        if tag == "progn":
            return sum(child_costs) + EPSILON
        if tag == "if":
            # Both arms exist in the code; branch-taken cost is the larger
            # arm (static estimate), plus the conditional jump.
            return child_costs[0] + self._cycles("JUMPNIL", 1) \
                + max(child_costs[1:], default=0.0) + EPSILON
        if tag == "call":
            return self._call_cost(node, child_costs)
        if tag == "lambda":
            # Defaults plus body; the binding cost is charged at the call.
            return sum(child_costs) + EPSILON
        if tag == "progbody":
            return sum(child_costs) + EPSILON
        if tag == "go":
            return self._cycles("JUMP", 1) + EPSILON
        if tag == "return":
            return child_costs[0] + self._cycles("JUMP", 1) + EPSILON
        if tag == "caseq":
            keys = node.op[1]
            dispatch = sum(len(k) for k in keys) * self._cycles("EQLBR", 1)
            return child_costs[0] + dispatch \
                + max(child_costs[1:], default=0.0) + EPSILON
        if tag == "catcher":
            return sum(child_costs) + self._cycles("CATCHPUSH", 3) \
                + self._cycles("CATCHPOP", 2) + EPSILON
        return sum(child_costs) + 1.0 + EPSILON
