"""The e-graph: e-classes, hashcons'd e-nodes, congruence closure.

An e-graph represents a (possibly infinite) set of equivalent program
terms compactly: every *e-class* is a set of *e-nodes*, and every e-node
is an operator applied to child e-classes.  Equality saturation adds
equivalences non-destructively -- ``merge(a, b)`` records "these two
classes denote the same value" and the congruence closure propagates the
consequence upward ("if the children are equal, the parents built from
them are equal").

The implementation follows the egg recipe ("egg: Fast and Extensible
Equality Saturation"): a union-find over class ids, a hashcons from
canonical e-nodes to class ids, and a deferred ``rebuild`` that restores
the congruence invariant after a batch of merges.

Everything here is deliberately independent of the compiler IR: e-node
operators are opaque hashable payloads (see :mod:`.term` for the mapping
from the Table 2 node set).  That keeps the core property-testable on
tiny hand-built graphs (``tests/test_egraph.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class ENode:
    """One operator applied to child e-classes.

    ``op`` is any hashable payload (constructor tag plus leaf data);
    ``children`` are e-class ids.  E-nodes are value objects: two e-nodes
    with the same op and the same (canonical) children are the same node,
    which is exactly what the hashcons deduplicates.
    """

    op: Any
    children: Tuple[int, ...] = ()

    def map_children(self, find) -> "ENode":
        return ENode(self.op, tuple(find(c) for c in self.children))


@dataclass
class EClass:
    """One equivalence class: its e-nodes plus the parent e-nodes that
    reference it (needed to repair congruence after a merge)."""

    id: int
    nodes: List[ENode] = field(default_factory=list)
    #: (parent e-node as it was added, class id it lives in)
    parents: List[Tuple[ENode, int]] = field(default_factory=list)


class EGraph:
    """Union-find + hashcons + congruence closure.

    Invariants (checked by ``tests/test_egraph.py``):

    * ``find`` is idempotent: ``find(find(a)) == find(a)``;
    * after ``rebuild``, congruence holds: two e-nodes with equal ops and
      pairwise-equivalent children live in the same e-class;
    * the hashcons is canonical: looking up any canonicalized e-node of a
      live class returns that class;
    * growth is monotone: ``classes_created`` and ``nodes_added`` never
      decrease, and merges only coarsen the partition (``n_classes`` can
      only shrink through merges, never through adds).
    """

    def __init__(self, max_nodes: Optional[int] = None,
                 max_classes: Optional[int] = None):
        self._parent: Dict[int, int] = {}
        self._classes: Dict[int, EClass] = {}
        self._hashcons: Dict[ENode, int] = {}
        self._worklist: List[int] = []
        #: Insertion stamp per e-node (extraction tie-breaker: the earliest
        #: added e-node wins ties, so seeding order expresses preference).
        self._stamps: Dict[ENode, int] = {}
        self._next_stamp = 0
        self.max_nodes = max_nodes
        self.max_classes = max_classes
        #: Monotone counters (never decremented; saturation progress gauges).
        self.classes_created = 0
        self.nodes_added = 0
        self.unions = 0

    # -- queries -------------------------------------------------------------

    @property
    def n_classes(self) -> int:
        """Live (canonical) e-class count."""
        return len(self._classes)

    @property
    def n_nodes(self) -> int:
        """Live hashcons'd e-node count."""
        return len(self._hashcons)

    def over_limits(self) -> bool:
        """True when either configured size bound is met or exceeded."""
        if self.max_nodes is not None and self.n_nodes >= self.max_nodes:
            return True
        if self.max_classes is not None and self.n_classes >= self.max_classes:
            return True
        return False

    def class_ids(self) -> List[int]:
        """Canonical class ids, in creation order (deterministic)."""
        return sorted(self._classes)

    def nodes_of(self, class_id: int) -> List[ENode]:
        """The e-nodes of a class, children canonicalized."""
        eclass = self._classes[self.find(class_id)]
        return [node.map_children(self.find) for node in eclass.nodes]

    def stamp(self, node: ENode) -> int:
        """Insertion stamp of a (canonicalized) e-node; large when unknown."""
        return self._stamps.get(node, 1 << 60)

    # -- union-find ----------------------------------------------------------

    def find(self, class_id: int) -> int:
        root = class_id
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[class_id] != root:
            self._parent[class_id], class_id = root, self._parent[class_id]
        return root

    def canonicalize(self, node: ENode) -> ENode:
        return node.map_children(self.find)

    # -- growth --------------------------------------------------------------

    def add(self, node: ENode) -> int:
        """Add an e-node; returns its e-class id (existing on a hashcons
        hit, fresh otherwise)."""
        node = self.canonicalize(node)
        existing = self._hashcons.get(node)
        if existing is not None:
            return self.find(existing)
        class_id = self.classes_created
        self.classes_created += 1
        self.nodes_added += 1
        self._parent[class_id] = class_id
        eclass = EClass(class_id)
        eclass.nodes.append(node)
        self._classes[class_id] = eclass
        self._hashcons[node] = class_id
        self._stamps[node] = self._next_stamp
        self._next_stamp += 1
        for child in node.children:
            self._classes[self.find(child)].parents.append((node, class_id))
        return class_id

    def merge(self, a: int, b: int) -> int:
        """Union two e-classes; returns the surviving root.  Callers run
        :meth:`rebuild` after a batch of merges to restore congruence."""
        a, b = self.find(a), self.find(b)
        if a == b:
            return a
        self.unions += 1
        # Keep the older id as root: extraction and iteration stay stable.
        if b < a:
            a, b = b, a
        self._parent[b] = a
        survivor, absorbed = self._classes[a], self._classes.pop(b)
        survivor.nodes.extend(absorbed.nodes)
        survivor.parents.extend(absorbed.parents)
        self._worklist.append(a)
        return a

    def rebuild(self) -> None:
        """Restore the congruence invariant after merges: re-canonicalize
        the hashcons and upward-merge parents made congruent."""
        while self._worklist:
            todo = {self.find(c) for c in self._worklist}
            self._worklist.clear()
            for class_id in sorted(todo):
                self._repair(class_id)

    def _repair(self, class_id: int) -> None:
        eclass = self._classes.get(self.find(class_id))
        if eclass is None:  # pragma: no cover - merged away mid-batch
            return
        # Re-canonicalize this class's parents in the hashcons; congruent
        # parents collapse onto one entry and their classes merge.
        seen: Dict[ENode, int] = {}
        new_parents: List[Tuple[ENode, int]] = []
        for node, parent_id in eclass.parents:
            stale_stamp = self._stamps.get(node)
            self._hashcons.pop(node, None)
            canonical = self.canonicalize(node)
            if canonical not in self._stamps and stale_stamp is not None:
                self._stamps[canonical] = stale_stamp
            parent_id = self.find(parent_id)
            if canonical in seen and seen[canonical] != parent_id:
                parent_id = self.merge(seen[canonical], parent_id)
            previous = self._hashcons.get(canonical)
            if previous is not None and self.find(previous) != parent_id:
                parent_id = self.merge(previous, parent_id)
            self._hashcons[canonical] = parent_id
            seen[canonical] = parent_id
            new_parents.append((canonical, parent_id))
        eclass = self._classes.get(self.find(class_id))
        if eclass is not None:
            eclass.parents = new_parents
        # Dedup this class's own node list under canonicalization.
        root = self.find(class_id)
        eclass = self._classes[root]
        unique: Dict[ENode, None] = {}
        for node in eclass.nodes:
            unique.setdefault(self.canonicalize(node), None)
        eclass.nodes = list(unique)

    # -- debugging -----------------------------------------------------------

    def dump(self) -> str:  # pragma: no cover - debugging aid
        lines = []
        for class_id in self.class_ids():
            nodes = ", ".join(
                f"{n.op}{list(n.children)}" for n in self.nodes_of(class_id))
            lines.append(f"e{class_id}: {nodes}")
        return "\n".join(lines)


def extract_costs(graph: EGraph, cost_fn) -> Dict[int, Tuple[float, ENode]]:
    """Bottom-up fixpoint extraction: cheapest known cost and the e-node
    achieving it, per canonical e-class.

    ``cost_fn(node, child_costs)`` returns the cost of choosing *node*
    given the already-computed costs of its child classes (a list of
    floats).  Classes that are only reachable through cycles keep infinite
    cost and are absent from the result -- any class that was ever added
    from a real term always resolves.

    Ties break toward the e-node added earliest (the seeding order), so a
    caller that inserts a preferred tree first gets it back unless the
    saturation found something strictly cheaper.
    """
    best: Dict[int, Tuple[float, int, ENode]] = {}
    changed = True
    while changed:
        changed = False
        for class_id in graph.class_ids():
            for node in graph.nodes_of(class_id):
                child_costs = []
                resolvable = True
                for child in node.children:
                    entry = best.get(graph.find(child))
                    if entry is None:
                        resolvable = False
                        break
                    child_costs.append(entry[0])
                if not resolvable:
                    continue
                cost = cost_fn(node, child_costs)
                candidate = (cost, graph.stamp(node), node)
                current = best.get(class_id)
                if current is None or candidate[:2] < current[:2]:
                    best[class_id] = candidate
                    changed = True
    return {class_id: (cost, node)
            for class_id, (cost, _stamp, node) in best.items()}
