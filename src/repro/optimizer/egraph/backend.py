"""The equality-saturation optimizer backend.

Where the ordered backend (:class:`~repro.optimizer.meta.SourceOptimizer`)
commits to each rewrite destructively -- so phase ordering decides what it
finds -- this backend applies the *same* rule inventory non-destructively
over an e-graph and lets the per-target cycle cost model pick the winner
afterwards ("Sketch-Guided Equality Saturation", PAPERS.md).

The saturation is *seeded*: the ordered backend runs first and its result
is inserted into the e-graph before the original tree, then the two roots
are unioned.  Insertion order is the extraction tie-breaker, so the
ordered result is the floor -- the e-graph either returns it verbatim or
finds something strictly cheaper on this target's cycle tables.  Combined
with the blanket fallback (any internal error returns the ordered tree,
with a diagnostic), the backend is never worse than ordered and never
raises.

Rule adaptation works per e-class: the class's current best term is
reconstructed as a standalone scratch tree (binders freshened, links
refreshed, analyses run), each enabled meta rule is offered the root, and
a firing's result is converted back to a term and unioned with the class
-- an equivalence added, nothing mutated.  Scratch trees are rebuilt for
every rule because several meta rules mutate in place.

Bounds: ``optimizer_fuel`` charges one unit per equivalence-producing
firing (on top of whatever the seeding ordered run spent),
``egraph_max_classes`` / ``egraph_max_nodes`` cap graph growth, and
``egraph_max_iterations`` caps saturation rounds.  Exhausting any bound
warns via diagnostics and extracts from the graph as it stands.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ...analysis import analyze
from ...ir.nodes import LambdaNode, Node, copy_tree
from ..meta import SourceOptimizer
from ..transcript import Transcript, render_node
from ..treeutil import RootHolder, fix_parents, refresh_variable_links
from .core import EGraph, ENode, extract_costs
from .cost import CycleCostModel
from .term import Term, TermContext, term_to_tree, tree_to_term

#: Term roots that any meta rule can possibly fire on.  Leaf classes and
#: lambda classes are skipped during saturation (the rule inventory
#: rewrites call/if/progn/caseq/progbody/setq forms only), which keeps the
#: per-iteration scratch-tree count proportional to interesting classes.
_REWRITABLE_ROOTS = frozenset(
    ["call", "if", "progn", "caseq", "progbody", "setq"])


class _EquivalenceTranscript:
    """Transcript proxy for the rule engine used inside saturation: every
    firing is recorded as a non-destructive ``equivalence`` entry, and the
    root-snapshot protocol is disabled (nothing mutates, so there is no
    whole-function "after" image to stamp)."""

    def __init__(self, inner: Transcript):
        self._inner = inner
        self.trace_rewrites = False

    def record(self, rule: str, before: Any, after: Any,
               phase: str = "optimizer", kind: str = "rewrite") -> None:
        self._inner.record(rule, before, after, phase=phase,
                           kind="equivalence")

    def begin_root(self, source: str) -> None:  # pragma: no cover - unused
        pass

    def attach_root(self, source: str) -> None:  # pragma: no cover - unused
        pass


def add_term(graph: EGraph, term: Term) -> int:
    """Insert a whole term bottom-up; returns its root e-class id."""
    children = tuple(add_term(graph, child) for child in term[1:])
    return graph.add(ENode(term[0], children))


def build_term(graph: EGraph, class_id: int,
               costs: Dict[int, Tuple[float, ENode]]) -> Term:
    """Reconstruct the extracted (cheapest) term of a class.  Terminates
    because the cost model is strictly monotone: every chosen child is
    strictly cheaper than its parent, so the chosen-node graph is acyclic.
    """
    _cost, node = costs[graph.find(class_id)]
    return (node.op, *[build_term(graph, child, costs)
                       for child in node.children])


class EGraphOptimizer:
    """Drop-in replacement for :class:`SourceOptimizer` selected by
    ``CompilerOptions.optimizer_backend = "egraph"``."""

    def __init__(self, options=None, transcript: Optional[Transcript] = None,
                 global_functions=None, diagnostics=None):
        self.ordered = SourceOptimizer(options, transcript,
                                       global_functions=global_functions,
                                       diagnostics=diagnostics)
        self.options = self.ordered.options
        self.transcript = self.ordered.transcript
        self.global_functions = self.ordered.global_functions
        self.diagnostics = diagnostics
        #: Mirrors SourceOptimizer's non-fixpoint flag (the seeding run's
        #: value, OR'd with saturation hitting a bound).
        self.hit_pass_limit = False
        #: Saturation statistics from the last optimize() call.
        self.stats: Dict[str, Any] = {}

    # -- public entry ---------------------------------------------------------

    def optimize(self, root: Node) -> Node:
        if not self.options.optimize:
            return root
        original = copy_tree(root)
        ordered_tree = self.ordered.optimize(root)
        self.hit_pass_limit = self.ordered.hit_pass_limit
        try:
            result = self._saturate_and_extract(original, ordered_tree)
        except Exception as err:
            self._warn(f"e-graph backend fell back to the ordered result "
                       f"({type(err).__name__}: {err})")
            self._bump("egraph_fallbacks")
            result = None
        if result is None:
            result = ordered_tree
        # Saturation's scratch trees share *free* variables with the
        # ordered tree, and each scratch refresh rewrote those variables'
        # back-pointer lists -- recompute them on whichever tree we return.
        refresh_variable_links(result)
        fix_parents(result)
        analyze(result)
        return result

    def rules_fired(self) -> List[str]:
        return self.ordered.rules_fired()

    # -- the saturation loop --------------------------------------------------

    def _saturate_and_extract(self, original: Node,
                              ordered_tree: Node) -> Optional[Node]:
        ctx = TermContext()
        graph = EGraph(max_nodes=self.options.egraph_max_nodes,
                       max_classes=self.options.egraph_max_classes)
        # Seed the ordered result FIRST: its e-nodes get the earliest
        # stamps, so extraction ties resolve toward it.
        ordered_term = tree_to_term(ordered_tree, ctx)
        root_class = add_term(graph, ordered_term)
        original_class = add_term(graph, tree_to_term(original, ctx))
        graph.merge(root_class, original_class)
        graph.rebuild()

        engine = SourceOptimizer(
            self.options, _EquivalenceTranscript(self.transcript),
            global_functions=self.global_functions, diagnostics=None)
        cost_model = CycleCostModel(self.options.target)
        cost_model.graph = graph

        fuel = self.options.optimizer_fuel
        tried: Set[Tuple[str, Term]] = set()
        iterations = 0
        equivalences = 0
        stop_reason = None
        while iterations < self.options.egraph_max_iterations:
            if graph.over_limits():
                stop_reason = (f"size limit reached "
                               f"({graph.n_nodes} e-nodes, "
                               f"{graph.n_classes} e-classes)")
                break
            if fuel <= 0:
                stop_reason = (f"fuel exhausted after "
                               f"{self.options.optimizer_fuel} firings")
                break
            iterations += 1
            costs = extract_costs(graph, cost_model)
            progress = False
            for class_id in graph.class_ids():
                if fuel <= 0 or graph.over_limits():
                    break
                if graph.find(class_id) != class_id:
                    continue
                entry = costs.get(class_id)
                if entry is None:
                    continue
                term = build_term(graph, class_id, costs)
                if term[0][0] not in _REWRITABLE_ROOTS:
                    continue
                for new_term in self._apply_rules(engine, term, ctx, tried):
                    fuel -= 1
                    equivalences += 1
                    new_class = add_term(graph, new_term)
                    if graph.find(new_class) != graph.find(class_id):
                        graph.merge(class_id, new_class)
                        progress = True
                    if fuel <= 0 or graph.over_limits():
                        break
            graph.rebuild()
            if not progress:
                break
        else:
            stop_reason = (f"stopped at egraph_max_iterations="
                           f"{self.options.egraph_max_iterations}")

        if stop_reason is not None:
            self.hit_pass_limit = True
            self._warn(f"e-graph saturation did not complete "
                       f"({stop_reason}); extracting from the graph "
                       f"as it stands")

        costs = extract_costs(graph, cost_model)
        root = graph.find(root_class)
        ordered_cost = self._term_cost(graph, ordered_term, cost_model)
        extracted_cost, _node = costs[root]
        self._record_stats(graph, iterations, equivalences,
                           extracted_cost, ordered_cost)
        if extracted_cost > ordered_cost:  # pragma: no cover - tie-break
            # guarantees <=; defensive only
            return None
        best = build_term(graph, root, costs)
        if best == ordered_term:
            # Saturation found nothing cheaper; keep the ordered tree
            # object itself (no reconstruction wobble).
            return ordered_tree
        tree = term_to_tree(best, ctx)
        if not isinstance(tree, LambdaNode) and \
                isinstance(ordered_tree, LambdaNode):
            return None
        refresh_variable_links(tree)
        fix_parents(tree)
        render_node(tree)  # round-trip sanity: must back-translate
        self._bump("egraph_extraction_wins")
        return tree

    def _apply_rules(self, engine: SourceOptimizer, term: Term,
                     ctx: TermContext,
                     tried: Set[Tuple[str, Term]]) -> List[Term]:
        """Offer every enabled meta rule the root of this class's term;
        return the distinct result terms.  Each rule gets a freshly built
        scratch tree (several rules mutate in place)."""
        results: List[Term] = []
        for name, rule, gate in engine._rules:
            if gate and not getattr(engine.options, gate):
                continue
            key = (name, term)
            if key in tried:
                continue
            tried.add(key)
            try:
                scratch = term_to_tree(term, ctx)
                holder = RootHolder(scratch)
                refresh_variable_links(holder.child)
                fix_parents(holder.child)
                analyze(holder.child)
                out = rule(holder.child)
                if out is None:
                    continue
                fix_parents(out)
                refresh_variable_links(out)
                new_term = tree_to_term(out, ctx)
            except Exception:
                # A rule that cannot handle a free-variable fragment (or
                # any other scratch-tree wrinkle) simply does not fire
                # here; the ordered seeding already gave it its chance in
                # full context.
                self._bump("egraph_rule_errors")
                continue
            if new_term != term:
                results.append(new_term)
        return results

    # -- bookkeeping ----------------------------------------------------------

    def _term_cost(self, graph: EGraph, term: Term,
                   cost_model: CycleCostModel) -> float:
        """Cost of one concrete term under the model (children costed
        structurally, not via extraction -- this is the seeded tree's own
        cost, used as the never-regress floor)."""
        child_costs = [self._term_cost(graph, child, cost_model)
                       for child in term[1:]]
        children = tuple(add_term(graph, child) for child in term[1:])
        return cost_model(ENode(term[0], children), child_costs)

    def _record_stats(self, graph: EGraph, iterations: int,
                      equivalences: int, extracted_cost: float,
                      ordered_cost: float) -> None:
        self.stats = {
            "e_classes": graph.n_classes,
            "e_nodes": graph.n_nodes,
            "iterations": iterations,
            "equivalences": equivalences,
            "extracted_cost": extracted_cost,
            "ordered_cost": ordered_cost,
        }
        if self.diagnostics is None:
            return
        self.diagnostics.bump("egraph_classes", graph.n_classes)
        self.diagnostics.bump("egraph_nodes", graph.n_nodes)
        self.diagnostics.bump("egraph_iterations", iterations)
        self.diagnostics.bump("egraph_equivalences", equivalences)
        self.diagnostics.bump("egraph_extraction_cost",
                              int(extracted_cost))

    def _warn(self, message: str) -> None:
        if self.diagnostics is not None:
            self.diagnostics.warn(message, phase="optimizer")

    def _bump(self, counter: str) -> None:
        if self.diagnostics is not None:
            self.diagnostics.bump(counter)


def make_optimizer(options, transcript, global_functions=None,
                   diagnostics=None):
    """Factory used by the compiler: pick the optimizer implementation for
    ``options.optimizer_backend``."""
    backend = getattr(options, "optimizer_backend", "ordered")
    if backend == "egraph":
        return EGraphOptimizer(options, transcript,
                               global_functions=global_functions,
                               diagnostics=diagnostics)
    return SourceOptimizer(options, transcript,
                           global_functions=global_functions,
                           diagnostics=diagnostics)
