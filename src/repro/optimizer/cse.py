"""Common sub-expression elimination (Section 4.3).

The paper left this phase unimplemented ("Common sub-expression elimination
has not yet been implemented, because preliminary experiments indicate that
its contribution to program speed will be smaller than the other techniques
...  Like the source-level optimization phase, its use is completely
optional, for it only affects the efficiency of the resulting code and can
be expressed as a source-level transformation using lambda-expressions.")

We implement it exactly as the paper designed it: as a *separate phase*
(avoiding the introduction/elimination thrashing problem of Section 4.3)
whose output is a source-level ``let``: the repeated expression becomes a
lambda-binding wrapped around the smallest common ancestor.

Only pure, allocation-free expressions are eligible (duplicated evaluation
of those is what CSE removes; anything with effects must keep its
evaluation points).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis import analyze, may_be_duplicated
from ..datum import gensym
from ..ir.nodes import (
    CallNode,
    FunctionRefNode,
    IfNode,
    LambdaNode,
    LiteralNode,
    Node,
    Variable,
    VarRefNode,
)
from ..options import CompilerOptions, DEFAULT_OPTIONS
from .transcript import Transcript, render_node
from .treeutil import RootHolder, fix_parents, refresh_variable_links, tree_equal


def eliminate_common_subexpressions(
        root: Node, options: Optional[CompilerOptions] = None,
        transcript: Optional[Transcript] = None) -> Node:
    """Hoist repeated pure subexpressions into introduced lambda bindings."""
    options = options or DEFAULT_OPTIONS
    transcript = transcript or Transcript()
    holder = RootHolder(root)
    if transcript.trace_rewrites:
        transcript.begin_root(render_node(holder.child))
    # Iterate until no more profitable candidates (each round introduces one
    # binding, largest candidates first).
    for _round in range(50):
        refresh_variable_links(holder.child)
        fix_parents(holder.child)
        analyze(holder.child)
        if not _hoist_one(holder, options, transcript):
            break
    return holder.child


def _hoist_one(holder: RootHolder, options: CompilerOptions,
               transcript: Transcript) -> bool:
    groups = _candidate_groups(holder.child, options)
    if not groups:
        return False
    # Largest (most expensive) expression first.
    groups.sort(key=lambda group: -(group[0].complexity or 0))
    representative, occurrences = groups[0]
    ancestor = _common_ancestor(occurrences)
    if ancestor is None or ancestor.parent is None:
        return False
    # A conditional should not force evaluation of an expression that only
    # some arms use: hoisting above an `if` would evaluate it eagerly.  We
    # only hoist when every occurrence is on every execution path -- the
    # simple conservative test: the ancestor is not an IfNode whose arms
    # split the occurrences.
    if isinstance(ancestor, IfNode):
        in_then = [n for n in occurrences if _is_under(n, ancestor.then)]
        in_else = [n for n in occurrences if _is_under(n, ancestor.else_)]
        if in_then and in_else and not any(
                _is_under(n, ancestor.test) for n in occurrences):
            return False

    before = render_node(ancestor)
    variable = Variable(gensym("cse"))
    parent = ancestor.parent  # capture before the wrapper re-parents ancestor
    for occurrence in occurrences:
        occurrence.parent.replace_child(occurrence, VarRefNode(variable))
    wrapper = LambdaNode([variable], [], None, ancestor)
    call = CallNode(wrapper, [representative])
    parent.replace_child(ancestor, call)
    fix_parents(call)
    transcript.record("META-COMMON-SUBEXPRESSION", before, render_node(call),
                      phase="cse")
    if transcript.trace_rewrites:
        transcript.attach_root(render_node(holder.child))
    return True


def _candidate_groups(root: Node, options: CompilerOptions
                      ) -> List[Tuple[Node, List[Node]]]:
    """Group structurally equal pure subexpressions occurring >= 2 times."""
    buckets: Dict[str, List[Node]] = {}
    for node in root.walk():
        if not isinstance(node, CallNode):
            continue
        if not isinstance(node.fn, FunctionRefNode):
            continue
        if (node.complexity or 0) < options.cse_min_complexity:
            continue
        if not may_be_duplicated(node):
            continue
        key = render_node(node)
        buckets.setdefault(key, []).append(node)
    groups: List[Tuple[Node, List[Node]]] = []
    for nodes in buckets.values():
        if len(nodes) < 2:
            continue
        # Nested occurrences (one inside another) are the same computation;
        # keep only outermost-disjoint occurrences.
        disjoint = [n for n in nodes
                    if not any(other is not n and _is_under(n, other)
                               for other in nodes)]
        if len(disjoint) < 2:
            continue
        if not all(tree_equal(disjoint[0], other) for other in disjoint[1:]):
            continue
        groups.append((disjoint[0], disjoint))
    return groups


def _is_under(node: Node, ancestor: Node) -> bool:
    current: Optional[Node] = node
    while current is not None:
        if current is ancestor:
            return True
        current = current.parent
    return False


def _common_ancestor(nodes: List[Node]) -> Optional[Node]:
    paths: List[List[Node]] = []
    for node in nodes:
        path: List[Node] = []
        current: Optional[Node] = node
        while current is not None:
            path.append(current)
            current = current.parent
        paths.append(list(reversed(path)))
    shortest = min(len(p) for p in paths)
    ancestor: Optional[Node] = None
    for i in range(shortest):
        candidates = {id(p[i]) for p in paths}
        if len(candidates) == 1:
            ancestor = paths[0][i]
        else:
            break
    # Never choose one of the occurrences themselves.
    if ancestor in nodes:
        return ancestor.parent
    return ancestor
