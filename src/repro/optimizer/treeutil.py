"""Tree utilities shared by the optimizer: link refreshing, structural
equality, and variable substitution."""

from __future__ import annotations

from typing import Set

from ..datum import lisp_equal
from ..ir.nodes import (
    CallNode,
    CaseqNode,
    CatcherNode,
    FunctionRefNode,
    GoNode,
    IfNode,
    LambdaNode,
    LiteralNode,
    Node,
    PrognNode,
    ProgbodyNode,
    ReturnNode,
    SetqNode,
    TagMarker,
    Variable,
    VarRefNode,
    copy_tree,
)


def refresh_variable_links(root: Node) -> None:
    """Recompute every Variable's refs/setqs lists from the live tree.

    Tree surgery (substitution, argument dropping) leaves stale entries in
    the per-variable back-pointer lists; the optimizer refreshes them at the
    start of each pass so reference counts are trustworthy.
    """
    variables: Set[Variable] = set()
    for node in root.walk():
        if isinstance(node, VarRefNode):
            variables.add(node.variable)
        elif isinstance(node, SetqNode):
            variables.add(node.variable)
        elif isinstance(node, LambdaNode):
            variables.update(node.all_variables())
    for variable in variables:
        variable.refs = []
        variable.setqs = []
    for node in root.walk():
        if isinstance(node, VarRefNode):
            node.variable.refs.append(node)
        elif isinstance(node, SetqNode):
            node.variable.setqs.append(node)


def fix_parents(root: Node) -> None:
    """Re-establish parent pointers below *root* (after tree surgery)."""
    for node in root.walk():
        for child in node.children():
            child.parent = node


def tree_equal(a: Node, b: Node) -> bool:
    """Structural equality of two subtrees.

    Variables compare by identity (alpha-converted trees make this exact);
    literals compare with ``equal``.  Used for the same-test-if rule and for
    common-subexpression detection.
    """
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, LiteralNode):
        return lisp_equal(a.value, b.value)
    if isinstance(a, VarRefNode):
        return a.variable is b.variable
    if isinstance(a, FunctionRefNode):
        return a.name is b.name
    if isinstance(a, IfNode):
        return (tree_equal(a.test, b.test) and tree_equal(a.then, b.then)
                and tree_equal(a.else_, b.else_))
    if isinstance(a, CallNode):
        if len(a.args) != len(b.args):
            return False
        return tree_equal(a.fn, b.fn) and all(
            tree_equal(x, y) for x, y in zip(a.args, b.args))
    if isinstance(a, PrognNode):
        if len(a.forms) != len(b.forms):
            return False
        return all(tree_equal(x, y) for x, y in zip(a.forms, b.forms))
    if isinstance(a, SetqNode):
        return a.variable is b.variable and tree_equal(a.value, b.value)
    # Lambdas, progbodies, caseq, catchers: conservatively unequal unless
    # identical (renamed bound variables make structural comparison subtle).
    return False


def replace_node(old: Node, new: Node) -> None:
    """Splice *new* where *old* sits; *old*'s parent must exist."""
    parent = old.parent
    if parent is None:
        raise ValueError("cannot replace the root without a holder")
    parent.replace_child(old, new)


class RootHolder(Node):
    """Sentinel parent so rules can replace the tree's real root."""

    KIND = "root-holder"
    __slots__ = ("child",)

    def __init__(self, child: Node):
        super().__init__()
        self.child = child
        child.parent = self

    def children(self):
        yield self.child

    def replace_child(self, old: Node, new: Node) -> None:
        if self.child is not old:
            raise ValueError("holder does not own this child")
        self.child = new
        new.parent = self
