"""The optimizer's debugging transcript.

Section 7's worked example shows output of the form::

    ;**** Optimizing this form: (+$f a b c)
    ;**** to be this form: (+$f (+$f c b) a)
    ;**** courtesy of META-EVALUATE-ASSOC-COMMUT-CALL

Entries are recorded structurally so tests (and the E5 experiment bench) can
assert on rules fired, and rendered textually in the same style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..ir.backtranslate import back_translate
from ..reader.printer import write_to_string


@dataclass
class TranscriptEntry:
    rule: str
    before: str
    after: str

    def render(self) -> str:
        return (f";**** Optimizing this form: {self.before}\n"
                f";**** to be this form: {self.after}\n"
                f";**** courtesy of {self.rule}")


class Transcript:
    def __init__(self, stream: Optional[Any] = None):
        self.entries: List[TranscriptEntry] = []
        self.stream = stream

    def record(self, rule: str, before: Any, after: Any) -> None:
        """Record one transformation.  *before* is pre-rendered text (the
        tree is about to mutate, so the caller renders it first); *after*
        may be a Node or pre-rendered text."""
        after_text = after if isinstance(after, str) else _render(after)
        entry = TranscriptEntry(rule=rule, before=before, after=after_text)
        self.entries.append(entry)
        if self.stream is not None:
            print(entry.render(), file=self.stream)

    def rules_fired(self) -> List[str]:
        return [entry.rule for entry in self.entries]

    def rule_counts(self) -> Dict[str, int]:
        """Fire count per rule name, in first-fired order (the diagnostics
        layer merges these into ``Diagnostics.rule_fires``)."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.rule] = counts.get(entry.rule, 0) + 1
        return counts

    def render(self) -> str:
        return "\n".join(entry.render() for entry in self.entries)


def _render(node: Any) -> str:
    return write_to_string(back_translate(node))


def render_node(node: Any) -> str:
    return _render(node)
