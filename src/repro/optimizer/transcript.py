"""The optimizer's debugging transcript.

Section 7's worked example shows output of the form::

    ;**** Optimizing this form: (+$f a b c)
    ;**** to be this form: (+$f (+$f c b) a)
    ;**** courtesy of META-EVALUATE-ASSOC-COMMUT-CALL

Entries are recorded structurally so tests (and the E5 experiment bench) can
assert on rules fired, and rendered textually in the same style.

Because the internal tree is back-translatable to source at any point
(Table 2), each entry can also carry the *whole function* before and after
the rewrite, rendered as a unified diff.  That capture costs one extra
back-translation per firing, so it is gated by
``CompilerOptions.trace_rewrites`` (the optimizer calls
:meth:`Transcript.begin_root` / :meth:`Transcript.attach_root` around each
mutation).  Every entry always carries a monotonic sequence number and a
``perf_counter`` timestamp, which the :mod:`repro.trace` exporter turns
into Chrome trace instant events.
"""

from __future__ import annotations

import difflib
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from ..ir.backtranslate import back_translate
from ..reader.printer import write_to_string


@dataclass
class TranscriptEntry:
    rule: str
    before: str
    after: str
    #: 1-based position of this firing within its compilation.
    seq: int = 0
    #: Which pipeline phase fired the rule ("optimizer" | "cse").
    phase: str = "optimizer"
    #: How the firing changed the program: a destructive "rewrite"
    #: (ordered backend: the tree mutated, before/after are real states)
    #: or a non-destructive "equivalence" (e-graph backend: the firing
    #: *added* an equal form, nothing was replaced -- there is no mutated
    #: "after" image to diff).
    kind: str = "rewrite"
    #: ``time.perf_counter()`` at record time (same clock as the
    #: diagnostics phase records, so the trace exporter can interleave).
    at_s: float = 0.0
    #: Whole-function back-translations around the rewrite; populated only
    #: under ``CompilerOptions.trace_rewrites``.
    before_source: Optional[str] = None
    after_source: Optional[str] = None

    def render(self) -> str:
        if self.kind == "equivalence":
            return (f";**** Noting this form: {self.before}\n"
                    f";**** is equivalent to: {self.after}\n"
                    f";**** courtesy of {self.rule}")
        return (f";**** Optimizing this form: {self.before}\n"
                f";**** to be this form: {self.after}\n"
                f";**** courtesy of {self.rule}")

    def diff(self) -> str:
        """Unified diff of the whole function around this rewrite (falls
        back to the local form when full sources were not captured).

        Equivalence entries never diff whole-function snapshots: the
        e-graph firing mutated nothing, so there is no "after" image --
        the local forms themselves are the event."""
        if self.kind == "equivalence":
            before, after = self.before, self.after
            lines = difflib.unified_diff(
                before.splitlines(), after.splitlines(),
                fromfile=f"form #{self.seq}",
                tofile=f"equivalent #{self.seq}", lineterm="")
            return "\n".join(lines)
        before = self.before_source if self.before_source is not None \
            else self.before
        after = self.after_source if self.after_source is not None \
            else self.after
        lines = difflib.unified_diff(
            before.splitlines(), after.splitlines(),
            fromfile=f"before #{self.seq}", tofile=f"after #{self.seq}",
            lineterm="")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "rule": self.rule,
            "phase": self.phase,
            "kind": self.kind,
            "at_s": self.at_s,
            "before": self.before,
            "after": self.after,
            "before_source": self.before_source,
            "after_source": self.after_source,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "TranscriptEntry":
        return cls(rule=data["rule"], before=data.get("before", ""),
                   after=data.get("after", ""), seq=data.get("seq", 0),
                   phase=data.get("phase", "optimizer"),
                   kind=data.get("kind", "rewrite"),
                   at_s=data.get("at_s", 0.0),
                   before_source=data.get("before_source"),
                   after_source=data.get("after_source"))


class Transcript:
    def __init__(self, stream: Optional[Any] = None,
                 trace_rewrites: bool = False):
        self.entries: List[TranscriptEntry] = []
        self.stream = stream
        #: When True, callers snapshot the whole function around each
        #: firing (begin_root / attach_root) so entries carry full
        #: before/after source for diff rendering.
        self.trace_rewrites = trace_rewrites
        self._root_source: Optional[str] = None

    def begin_root(self, source: str) -> None:
        """Install the current whole-function source; the next recorded
        entry uses it as its ``before_source``."""
        self._root_source = source

    def attach_root(self, source: str) -> None:
        """Complete the most recent entry with the post-rewrite
        whole-function source (which also becomes the next ``before``)."""
        if self.entries:
            self.entries[-1].after_source = source
        self._root_source = source

    def record(self, rule: str, before: Any, after: Any,
               phase: str = "optimizer", kind: str = "rewrite") -> None:
        """Record one transformation.  *before* is pre-rendered text (the
        tree is about to mutate, so the caller renders it first); *after*
        may be a Node or pre-rendered text.  ``kind="equivalence"``
        records a non-destructive e-graph firing: no whole-function
        snapshot is attached (nothing mutated, so there is none)."""
        after_text = after if isinstance(after, str) else _render(after)
        entry = TranscriptEntry(rule=rule, before=before, after=after_text,
                                seq=len(self.entries) + 1, phase=phase,
                                at_s=time.perf_counter(), kind=kind)
        if self.trace_rewrites and kind == "rewrite":
            entry.before_source = self._root_source
        self.entries.append(entry)
        if self.stream is not None:
            print(entry.render(), file=self.stream)

    def rules_fired(self) -> List[str]:
        return [entry.rule for entry in self.entries]

    def rule_counts(self) -> Dict[str, int]:
        """Fire count per rule name, in first-fired order (the diagnostics
        layer merges these into ``Diagnostics.rule_fires``)."""
        counts: Dict[str, int] = {}
        for entry in self.entries:
            counts[entry.rule] = counts.get(entry.rule, 0) + 1
        return counts

    def render(self) -> str:
        return "\n".join(entry.render() for entry in self.entries)

    def render_diffs(self) -> str:
        """Every rewrite as a unified diff, in firing order."""
        sections = []
        for entry in self.entries:
            sections.append(f";; {entry.kind} #{entry.seq} "
                            f"[{entry.phase}] {entry.rule}\n{entry.diff()}")
        return "\n\n".join(sections)

    def to_json(self) -> List[Dict[str, Any]]:
        return [entry.to_json() for entry in self.entries]


def _render(node: Any) -> str:
    return write_to_string(back_translate(node))


def render_node(node: Any) -> str:
    return _render(node)
