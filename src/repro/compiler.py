"""The top-level compiler driver: the phase pipeline of Table 1.

::

    source text
      | reader                          (repro.reader)
      | preliminary conversion          (repro.ir)
      | source-program analysis         (repro.analysis)
      | source-level optimization       (repro.optimizer)
      | [common subexpression elim.]    (repro.optimizer.cse, optional)
      | machine-dependent annotation    (repro.annotate)
      | target annotation + codegen     (repro.tnbind, repro.codegen)
      v
    parenthesized assembly (CodeObject), runnable on repro.machine

:class:`Compiler` holds a program under construction: ``compile_source``
accepts ``defun`` / ``defvar`` / expression forms, and ``machine()`` wraps
the result in a ready-to-run simulator.  ``phase_report`` reproduces
Table 1 as the pipeline actually executed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .analysis import analyze
from .annotate import annotate
from .cache import CachedFunction, as_cache, cache_key, canonical_source
from .codegen import FunctionCodegen
from .datum import NIL, Cons, to_list
from .datum.symbols import Symbol, sym
from .diagnostics import Diagnostics, count_nodes
from .errors import ConversionError, ReaderError
from .ir import Converter, LambdaNode, back_translate_to_string
from .machine import CodeObject, Machine, Program
from .optimizer import (
    SourceOptimizer,
    Transcript,
    eliminate_common_subexpressions,
)
from .options import CompilerOptions, DEFAULT_OPTIONS
from .reader import read_all

_PRELUDE_SOURCE: Optional[str] = None
# The batch driver compiles on pool workers; memoization must be safe when
# two workers load the prelude concurrently (each sees either None or the
# complete text, never a partial read).
_PRELUDE_LOCK = threading.Lock()


def prelude_source() -> str:
    """The text of the bundled Lisp prelude (read once, then memoized --
    every Compiler instance loads the same immutable file).  Thread-safe:
    concurrent first calls race only on who reads the file, not on what
    callers observe."""
    global _PRELUDE_SOURCE
    with _PRELUDE_LOCK:
        if _PRELUDE_SOURCE is None:
            import os

            path = os.path.join(os.path.dirname(__file__), "prelude.lisp")
            with open(path, "r", encoding="utf-8") as handle:
                _PRELUDE_SOURCE = handle.read()
        return _PRELUDE_SOURCE


@dataclass
class CompiledFunction:
    """What the compiler produces for one defun."""

    name: Symbol
    code: CodeObject
    optimized_source: str
    transcript: Transcript
    #: None when the function was materialized from the compilation cache
    #: (the cache stores no IR trees).
    lambda_node: Optional[LambdaNode]

    def listing(self) -> str:
        return self.code.listing()


@dataclass
class PhaseTrace:
    """Which phases ran for one function (reproduces Table 1)."""

    phases: List[str] = field(default_factory=list)

    def record(self, name: str) -> None:
        self.phases.append(name)

    def report(self) -> str:
        lines = ["Phase structure (as executed):"]
        for index, phase in enumerate(self.phases, 1):
            lines.append(f"  {index}. {phase}")
        return "\n".join(lines)


@dataclass
class CompilationResult:
    """Everything one :meth:`Compiler.compile` call produced.

    The four historical entry points (``compile_source``, ``compile_form``,
    ``compile_expression``, ``compile_and_run``) are thin wrappers that
    project single fields out of this object.
    """

    #: Names defined by this call, in order (defuns, defvars, and the
    #: wrapper function of a bare expression).
    defined: List[Symbol] = field(default_factory=list)
    #: The functions compiled by this call, keyed by name.
    functions: Dict[Symbol, "CompiledFunction"] = field(default_factory=dict)
    #: Phase pipeline of the last function compiled (Table 1).
    trace: Optional[PhaseTrace] = None
    #: Phase timings, node counts, rule fires, warnings for this call.
    diagnostics: Optional[Diagnostics] = None

    @property
    def primary(self) -> Optional["CompiledFunction"]:
        """The last function compiled: the natural "result" of a one-defun
        source or a bare expression."""
        for name in reversed(self.defined):
            if name in self.functions:
                return self.functions[name]
        return None

    @property
    def code(self) -> Optional[CodeObject]:
        primary = self.primary
        return primary.code if primary is not None else None

    @property
    def name(self) -> Optional[Symbol]:
        primary = self.primary
        return primary.name if primary is not None else None

    @property
    def transcript(self) -> Optional[Transcript]:
        primary = self.primary
        return primary.transcript if primary is not None else None

    @property
    def optimized_source(self) -> Optional[str]:
        primary = self.primary
        return primary.optimized_source if primary is not None else None

    @property
    def lambda_node(self) -> Optional[LambdaNode]:
        primary = self.primary
        return primary.lambda_node if primary is not None else None

    def listing(self) -> str:
        """Concatenated listings of every function this call compiled."""
        return "\n\n".join(self.functions[name].listing()
                           for name in self.defined
                           if name in self.functions)

    def phase_report(self) -> str:
        if self.trace is None:
            return "(nothing compiled yet)"
        lines = [self.trace.report()]
        if self.diagnostics is not None and self.diagnostics.phases:
            lines.extend(self.diagnostics.timing_lines())
        return "\n".join(lines)


class Compiler:
    """Compiles a program (a set of top-level forms) for the simulator."""

    def __init__(self, options: Optional[CompilerOptions] = None):
        self.options = options or DEFAULT_OPTIONS
        #: Content-addressed compilation cache (repro.cache), from
        #: options.cache: None, a directory path, or a shared
        #: CompilationCache instance.
        self.cache = as_cache(self.options.cache)
        self.converter = Converter()
        self.program = Program()
        self.functions: Dict[Symbol, CompiledFunction] = {}
        self.global_values: Dict[Symbol, Any] = {}
        # Lambda trees of compiled defuns, for global procedure integration
        # (block compilation, enable_global_integration).
        self.function_trees: Dict[Symbol, LambdaNode] = {}
        self.last_trace: Optional[PhaseTrace] = None
        #: Diagnostics of the most recent compile() call (kept here as well
        #: as on the CompilationResult so errored compiles stay inspectable).
        self.last_diagnostics: Optional[Diagnostics] = None
        self._prelude_names: Optional[List[Symbol]] = None

    # -- program entry points ---------------------------------------------------

    def compile(self, source: Any, *, name: str = "*toplevel*",
                expression: Optional[bool] = None) -> CompilationResult:
        """The single compilation entry point.

        *source* is program text or one already-read form.  Top-level
        ``defun`` / ``defvar`` / ``defparameter`` forms define names; any
        other form is wrapped as a zero-argument function called *name*.
        *expression* forces the interpretation: ``True`` wraps everything
        (the historical ``compile_expression`` behavior), ``False``
        rejects non-definition forms (the historical ``compile_source``
        behavior), ``None`` accepts both.
        """
        diagnostics = Diagnostics()
        self.last_diagnostics = diagnostics
        result = CompilationResult(diagnostics=diagnostics)
        if isinstance(source, str):
            timer = diagnostics.start_phase("reader")
            try:
                forms = read_all(source)
            except ReaderError as err:
                timer.finish()
                diagnostics.error(str(err), phase="reader",
                                  location=err.location)
                raise
            timer.finish(nodes_after=len(forms))
        else:
            forms = [source]
        expression_forms: List[Any] = []
        try:
            for form in forms:
                if expression is not True \
                        and self._toplevel_definition_kind(form):
                    defined = self._compile_definition(form, result,
                                                       diagnostics)
                    result.defined.append(defined)
                elif expression is False:
                    raise ConversionError(
                        f"only defun/defvar forms can be compiled at top "
                        f"level: {form!r}")
                else:
                    expression_forms.append(form)
            if expression_forms:
                from .datum import from_list

                body = expression_forms[0] if len(expression_forms) == 1 \
                    else from_list([sym("progn")] + expression_forms)
                lambda_form = from_list([sym("lambda"), NIL, body])
                key: Optional[str] = None
                compiled: Optional[CompiledFunction] = None
                if self._cache_active():
                    # The wrapper name lands in the CodeObject, so it is
                    # part of the address.
                    key = self._cache_key_for(lambda_form, f"wrapper:{name}")
                    compiled = self._cache_lookup(key, diagnostics)
                elif self.cache is not None:
                    diagnostics.bump("cache_bypass")
                if compiled is None:
                    timer = diagnostics.start_phase("ir conversion",
                                                    function=name)
                    node = self.converter.convert_lambda(lambda_form)
                    timer.finish(nodes_after=count_nodes(node))
                    compiled = self.compile_lambda(sym(name), node,
                                                   diagnostics=diagnostics)
                    if key is not None:
                        self._cache_store(key, compiled, diagnostics)
                result.defined.append(compiled.name)
                result.functions[compiled.name] = compiled
        except ConversionError as err:
            diagnostics.error(str(err), phase="ir conversion",
                              location=err.location)
            raise
        result.trace = self.last_trace
        return result

    # -- the compilation cache ---------------------------------------------------

    def _cache_active(self) -> bool:
        """Whole-pipeline memoization is sound exactly when the pipeline is
        a function of (form, options, target, proclaimed specials).  Global
        procedure integration makes it depend on the live function_trees
        registry as well, so that configuration bypasses the cache."""
        return self.cache is not None \
            and not self.options.enable_global_integration

    def _cache_key_for(self, form: Any, *extra: str) -> str:
        specials = ",".join(sorted(
            s.name for s in self.converter.proclaimed_specials))
        return cache_key(canonical_source(form), self.options,
                         extra=(f"specials:{specials}",) + extra)

    def _cache_lookup(self, key: str, diagnostics: Diagnostics
                      ) -> Optional[CompiledFunction]:
        """Probe the cache; on a hit, re-register the stored function and
        return it (the pipeline does not run)."""
        timer = diagnostics.start_phase("cache")
        cached = self.cache.get(key)
        timer.finish()
        error = self.cache.take_last_error()
        if error is not None:
            diagnostics.warn(error, phase="cache")
        if cached is None:
            diagnostics.bump("cache_misses")
            return None
        diagnostics.bump("cache_hits")
        name = sym(cached.name)
        compiled = CompiledFunction(
            name=name,
            code=cached.code,
            optimized_source=cached.optimized_source,
            transcript=Transcript(None),
            lambda_node=None,
        )
        self.program.add(name, cached.code)
        self.functions[name] = compiled
        trace = PhaseTrace()
        trace.record("cache hit (pipeline skipped)")
        self.last_trace = trace
        return compiled

    def _cache_store(self, key: str, compiled: CompiledFunction,
                     diagnostics: Diagnostics) -> None:
        self.cache.put(key, CachedFunction(
            name=str(compiled.name),
            code=compiled.code,
            optimized_source=compiled.optimized_source,
        ))
        error = self.cache.take_last_error()
        if error is not None:
            diagnostics.warn(error, phase="cache")
        else:
            diagnostics.bump("cache_stores")

    def _toplevel_definition_kind(self, form: Any) -> Optional[str]:
        if isinstance(form, Cons) and form.car is sym("defun"):
            return "defun"
        if isinstance(form, Cons) and form.car in (sym("defvar"),
                                                   sym("defparameter")):
            return "defvar"
        return None

    def _compile_definition(self, form: Any, result: CompilationResult,
                            diagnostics: Optional[Diagnostics] = None
                            ) -> Symbol:
        diagnostics = diagnostics if diagnostics is not None else Diagnostics()
        if self._toplevel_definition_kind(form) == "defun":
            key: Optional[str] = None
            if self._cache_active():
                key = self._cache_key_for(form)
                cached = self._cache_lookup(key, diagnostics)
                if cached is not None:
                    result.functions[cached.name] = cached
                    return cached.name
            elif self.cache is not None:
                diagnostics.bump("cache_bypass")
            timer = diagnostics.start_phase("ir conversion")
            name, node = self.converter.convert_defun(form)
            timer.record.function = str(name)
            timer.finish(nodes_after=count_nodes(node))
            compiled = self.compile_lambda(name, node,
                                           diagnostics=diagnostics)
            result.functions[name] = compiled
            if key is not None:
                self._cache_store(key, compiled, diagnostics)
            return name
        parts = to_list(form.cdr)
        name = parts[0]
        self.converter.proclaimed_specials.add(name)
        if len(parts) > 1:
            # Load-time evaluation of the initial value (it may be a
            # quoted constant or any computation over earlier globals).
            init_value = self._loadtime_interpreter().eval_form(parts[1])
        else:
            init_value = NIL
        self.global_values[name] = init_value
        return name

    # The historical entry points, kept as thin projections of compile().

    def compile_source(self, text: str) -> List[Symbol]:
        """Compile every top-level form; returns the defined names."""
        return self.compile(text, expression=False).defined

    def compile_form(self, form: Any) -> Optional[Symbol]:
        """Compile one top-level defun/defvar form; returns its name."""
        result = self.compile(form, expression=False)
        return result.defined[-1] if result.defined else None

    def compile_expression(self, text: str,
                           name: str = "*toplevel*") -> CompilationResult:
        """Compile an expression as a zero-argument function.  The result's
        ``code``/``name``/``transcript``/``diagnostics`` describe it."""
        return self.compile(text, name=name, expression=True)

    def _loadtime_interpreter(self):
        """An interpreter seeded with the globals defined so far, used for
        evaluating defvar initial values at load time."""
        from .interp import Interpreter

        interp = Interpreter()
        interp.converter.proclaimed_specials |= \
            self.converter.proclaimed_specials
        for name, value in self.global_values.items():
            interp.specials.set_global(name, value)
        return interp

    # -- the pipeline ---------------------------------------------------------------

    def compile_lambda(self, name: Symbol, node: LambdaNode,
                       diagnostics: Optional[Diagnostics] = None
                       ) -> CompiledFunction:
        if diagnostics is None:
            diagnostics = Diagnostics()
            self.last_diagnostics = diagnostics
        fname = str(name)
        trace = PhaseTrace()
        trace.record("preliminary conversion")
        verifier = None
        if self.options.verify_ir:
            from .verify import PipelineVerifier

            verifier = PipelineVerifier(fname, diagnostics=diagnostics)
            verifier.check_tree(node, "ir conversion")
        transcript = Transcript(self.options.transcript_stream
                                if self.options.transcript else None,
                                trace_rewrites=self.options.trace_rewrites)

        timer = diagnostics.start_phase("analysis", function=fname,
                                        nodes_before=count_nodes(node))
        analyze(node)
        timer.finish(nodes_after=count_nodes(node))
        trace.record("source-program analysis")
        if verifier is not None:
            verifier.check_tree(node, "analysis")

        if self.options.optimize:
            registry = dict(self.function_trees)
            if self.options.self_unroll_depth > 0:
                # Allow the function to integrate itself (loop unrolling):
                # register a *snapshot* of the pre-optimization tree under
                # its own name (the live tree mutates during optimization).
                from .ir import copy_tree

                snapshot = copy_tree(node)
                analyze(snapshot)
                registry[name] = snapshot
            from .optimizer.egraph import make_optimizer

            optimizer = make_optimizer(self.options, transcript,
                                       global_functions=registry,
                                       diagnostics=diagnostics)
            timer = diagnostics.start_phase("optimizer", function=fname,
                                            nodes_before=count_nodes(node))
            node = optimizer.optimize(node)
            timer.finish(nodes_after=count_nodes(node))
            if not isinstance(node, LambdaNode):
                raise ConversionError(
                    f"{name}: optimization did not preserve the lambda")
            trace.record("source-level optimization")
            if verifier is not None:
                verifier.check_tree(node, "optimizer")
                verifier.check_roundtrip(
                    node, "optimizer", self.converter.proclaimed_specials)

        if self.options.enable_cse:
            timer = diagnostics.start_phase("cse", function=fname,
                                            nodes_before=count_nodes(node))
            node = eliminate_common_subexpressions(
                node, self.options, transcript)
            timer.finish(nodes_after=count_nodes(node))
            if not isinstance(node, LambdaNode):
                raise ConversionError(f"{name}: CSE did not preserve lambda")
            trace.record("common subexpression elimination")
            if verifier is not None:
                verifier.check_tree(node, "cse")
                verifier.check_roundtrip(
                    node, "cse", self.converter.proclaimed_specials)

        timer = diagnostics.start_phase("annotate", function=fname,
                                        nodes_before=count_nodes(node))
        analyze(node)
        plans = annotate(node, self.options)
        timer.finish(nodes_after=count_nodes(node))
        trace.record("binding annotation")
        trace.record("special variable lookups")
        trace.record("representation annotation")
        trace.record("pdl number annotation")
        if verifier is not None:
            verifier.check_tree(node, "annotate")

        generator = FunctionCodegen(str(name), node, self.options, plans)
        codegen_start = time.perf_counter()
        code = generator.generate()
        codegen_seconds = time.perf_counter() - codegen_start
        # TNBIND/PACK runs inside generate(); the generator timed it so the
        # two Table 1 phases can be reported separately.
        diagnostics.record_phase(
            "tnbind", generator.tnbind_seconds, function=fname,
            nodes_before=generator.tns_packed,
            nodes_after=generator.tns_packed,
            started_s=generator.tnbind_started or None)
        diagnostics.record_phase(
            "codegen", codegen_seconds - generator.tnbind_seconds,
            function=fname, nodes_before=count_nodes(node),
            nodes_after=len(code.instructions),
            started_s=codegen_start)
        trace.record("target annotation (TNBIND/PACK)")
        trace.record("code generation")
        if verifier is not None:
            verifier.check_allocation(generator.tns, generator.packing,
                                      generator.pack_options, "tnbind")
            verifier.check_code(code, "codegen")

        if self.options.enable_peephole:
            from .codegen.peephole import optimize_code

            timer = diagnostics.start_phase(
                "peephole", function=fname,
                nodes_before=len(code.instructions))
            code, peephole_stats = optimize_code(code)
            timer.finish(nodes_after=len(code.instructions))
            diagnostics.record_rules(peephole_stats.as_rule_counts())
            trace.record("peephole (linear-block packing)")
            if verifier is not None:
                verifier.check_code(code, "peephole")

        diagnostics.record_rules(transcript.rule_counts())
        diagnostics.record_rewrites(transcript.to_json())

        compiled = CompiledFunction(
            name=name,
            code=code,
            optimized_source=back_translate_to_string(node),
            transcript=transcript,
            lambda_node=node,
        )
        self.program.add(name, code)
        self.functions[name] = compiled
        self.function_trees[name] = node
        self.last_trace = trace
        return compiled

    def load_prelude(self) -> List[Symbol]:
        """Compile the bundled standard library (src/repro/prelude.lisp):
        mapcar1/filter/reduce1/sort-list and friends, written in the
        dialect itself.  Idempotent: repeated calls return the names from
        the first load instead of re-compiling every definition."""
        if self._prelude_names is None:
            self._prelude_names = self.compile_source(prelude_source())
        return list(self._prelude_names)

    # -- running ------------------------------------------------------------------------

    def machine(self, fuel: int = 50_000_000) -> Machine:
        from .target.machines import get_target

        target = get_target(self.options.target)
        machine = Machine(self.program, fuel=fuel,
                          cycle_costs=dict(target.cycles),
                          tier=self.options.tier,
                          timing=self.options.timing,
                          pipeline=target.pipeline)
        for name, value in self.global_values.items():
            machine.define_global(name, value)
        return machine

    def run(self, name: str, args: Sequence[Any] = (),
            fuel: int = 50_000_000) -> Any:
        """Compile-and-go convenience: run a compiled function."""
        return self.machine(fuel).run(sym(name), list(args))

    def phase_report(self) -> str:
        """Render the executed phase pipeline (Table 1 reproduction), with
        the last compilation's wall-clock timings when available."""
        if self.last_trace is None:
            return "(nothing compiled yet)"
        lines = ["Phase structure (as executed):"]
        for index, phase in enumerate(self.last_trace.phases, 1):
            lines.append(f"  {index}. {phase}")
        if self.last_diagnostics is not None and self.last_diagnostics.phases:
            lines.extend(self.last_diagnostics.timing_lines())
        return "\n".join(lines)


def compile_and_run(source: str, call: str, args: Sequence[Any] = (),
                    options: Optional[CompilerOptions] = None
                    ) -> Tuple[Any, Machine]:
    """One-shot helper used heavily by tests and benchmarks: compile all
    defuns in *source*, run *call* with *args*, return (result, machine)."""
    compiler = Compiler(options)
    compiler.compile_source(source)
    machine = compiler.machine()
    result = machine.run(sym(call), list(args))
    return result, machine
