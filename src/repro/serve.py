"""The compile daemon: ``python -m repro serve``.

A long-lived asyncio server that keeps the compiler warm -- memoized
prelude, per-worker memory caches over one shared on-disk store -- so
clients pay per-request compile cost (or a cache probe) instead of
per-invocation cold start (interpreter boot, imports, prelude compile,
pool spawn).  Two transports speak the same versioned schema
(:mod:`repro.api`):

* a **unix socket** carrying newline-delimited JSON: one request object
  per line, one response object per line, many requests per connection;
* an optional **HTTP** listener: ``POST /`` with the same JSON body,
  ``GET /metrics`` (Prometheus text: the existing compiler exporter over
  running totals, plus server gauges -- queue depth, in-flight count,
  per-op latency histograms, cache hit ratio), ``GET /healthz``.

Compilation is CPU-bound, so requests execute on a thread pool of
``--jobs`` workers; each worker thread owns a
:class:`repro.api.CompilerService` with its own memory LRU over the shared
disk cache and a small response cache keyed by the client-supplied
``cache_key`` (see :func:`repro.api.request_fingerprint`), so a repeated
request is answered without touching the pipeline at all.  The asyncio
side enforces **backpressure**: past ``--max-queue`` waiting requests a
``busy`` error is returned immediately (never a hang), monitoring ops
(``ping``/``stats``) always answer inline, and every queued request
carries a timeout.  Shutdown (signal or ``shutdown`` op) is graceful: the
listeners close, in-flight work drains, then the process exits.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
import uuid
from collections import OrderedDict, deque
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .api import (
    API_VERSION,
    ApiError,
    CompilerService,
    INLINE_OPS,
    check_request,
    error_response,
    ok_response,
    options_from_wire,
)
from .cache import CompilationCache
from .errors import ReproError
from .options import CompilerOptions
from .trace import merge_diagnostics_totals, new_metric_totals, \
    prometheus_from_totals

#: Histogram bucket upper bounds (seconds) for per-op request latency.
LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0)

#: How many recent request ids the server keeps for the stats payload.
RECENT_REQUEST_IDS = 64

#: Default cap on one request's wire size (socket line or HTTP body).
#: asyncio streams default to a 64 KiB limit, far below a realistic
#: source file; this is also the bound the HTTP handler enforces on
#: Content-Length so a client cannot make the daemon buffer arbitrary
#: amounts of memory.
DEFAULT_MAX_REQUEST_BYTES = 64 * 1024 * 1024


def request_trace_id(request: Any) -> Optional[str]:
    """The client-supplied ``trace_id`` of a parsed request, if any."""
    if isinstance(request, Mapping):
        value = request.get("trace_id")
        if isinstance(value, str) and value:
            return value
    return None


def tag_response(response: Dict[str, Any], trace_id: Optional[str]
                 ) -> Tuple[Dict[str, Any], str]:
    """Every response envelope identifies its request: the client's
    ``trace_id`` echoed back, or a server-minted ``request_id`` when the
    client sent none.  Both fields are additive, so old clients are
    unaffected; returns ``(response, the id used)``."""
    if trace_id is not None:
        response["trace_id"] = trace_id
        return response, trace_id
    request_id = "req-" + uuid.uuid4().hex[:12]
    response["request_id"] = request_id
    return response, request_id


def _socket_answers(path: str, timeout: float = 0.5) -> bool:
    """True when something accepts connections on the unix socket *path*
    -- distinguishes a live daemon (refuse to steal its address) from a
    stale socket file left by a crash (safe to unlink)."""
    import socket as _socket

    probe = _socket.socket(_socket.AF_UNIX, _socket.SOCK_STREAM)
    probe.settimeout(timeout)
    try:
        probe.connect(path)
    except OSError:
        return False
    else:
        return True
    finally:
        probe.close()


class ServerMetrics:
    """Thread-safe counters/gauges/histograms for one server, rendered in
    the Prometheus text format next to the compiler's own exporter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: Dict[str, int] = {}
        self.errors: Dict[str, int] = {}
        self.busy = 0
        self.timeouts = 0
        self.latency: Dict[str, List[int]] = {}
        self.latency_sum: Dict[str, float] = {}
        self.diagnostics_totals = new_metric_totals()
        #: Bounded journal of recently answered requests (id, op, seconds,
        #: ok) -- the /metrics-adjacent stats payload exposes it so a
        #: traced client round trip can be located server-side by id.
        self.recent: "deque" = deque(maxlen=RECENT_REQUEST_IDS)
        self.started = time.time()

    def observe(self, op: str, seconds: float, ok: bool) -> None:
        with self._lock:
            self.requests[op] = self.requests.get(op, 0) + 1
            if not ok:
                self.errors[op] = self.errors.get(op, 0) + 1
            buckets = self.latency.setdefault(
                op, [0] * (len(LATENCY_BUCKETS) + 1))
            for index, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    buckets[index] += 1
                    break
            else:
                buckets[-1] += 1
            self.latency_sum[op] = self.latency_sum.get(op, 0.0) + seconds

    def note_request(self, request_id: str, op: str, seconds: float,
                     ok: bool) -> None:
        with self._lock:
            self.recent.append({"id": request_id, "op": op,
                                "seconds": round(seconds, 6), "ok": ok})

    def recent_requests(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self.recent)

    def count_busy(self) -> None:
        with self._lock:
            self.busy += 1

    def count_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def merge_diagnostics(self, diagnostics: Mapping[str, Any]) -> None:
        with self._lock:
            merge_diagnostics_totals(self.diagnostics_totals, diagnostics)

    def cache_hit_ratio(self) -> float:
        with self._lock:
            counters = self.diagnostics_totals["counters"]
            hits = counters.get("cache_hits", 0)
            misses = counters.get("cache_misses", 0)
        return hits / (hits + misses) if hits + misses else 0.0

    def render(self, queue_depth: int, in_flight: int) -> str:
        """The /metrics document: server gauges + the compiler exporter."""
        with self._lock:
            lines = [
                "# HELP repro_server_uptime_seconds Seconds since the "
                "daemon started.",
                "# TYPE repro_server_uptime_seconds gauge",
                f"repro_server_uptime_seconds "
                f"{time.time() - self.started:.3f}",
                "# HELP repro_server_queue_depth Requests waiting for a "
                "worker right now.",
                "# TYPE repro_server_queue_depth gauge",
                f"repro_server_queue_depth {queue_depth}",
                "# HELP repro_server_in_flight Requests executing right "
                "now.",
                "# TYPE repro_server_in_flight gauge",
                f"repro_server_in_flight {in_flight}",
                "# HELP repro_server_requests_total Requests handled, by "
                "op.",
                "# TYPE repro_server_requests_total counter",
            ]
            for op in sorted(self.requests):
                lines.append(f'repro_server_requests_total{{op="{op}"}} '
                             f'{self.requests[op]}')
            lines.append("# HELP repro_server_request_errors_total "
                         "Requests that returned an error envelope, by op.")
            lines.append("# TYPE repro_server_request_errors_total counter")
            for op in sorted(self.errors):
                lines.append(
                    f'repro_server_request_errors_total{{op="{op}"}} '
                    f'{self.errors[op]}')
            lines.append("# HELP repro_server_busy_total Requests refused "
                         "by backpressure (queue full).")
            lines.append("# TYPE repro_server_busy_total counter")
            lines.append(f"repro_server_busy_total {self.busy}")
            lines.append("# HELP repro_server_timeouts_total Requests "
                         "that exceeded the per-request timeout.")
            lines.append("# TYPE repro_server_timeouts_total counter")
            lines.append(f"repro_server_timeouts_total {self.timeouts}")
            lines.append("# HELP repro_server_request_seconds Request "
                         "latency histogram, by op.")
            lines.append("# TYPE repro_server_request_seconds histogram")
            for op in sorted(self.latency):
                cumulative = 0
                for index, bound in enumerate(LATENCY_BUCKETS):
                    cumulative += self.latency[op][index]
                    lines.append(
                        f'repro_server_request_seconds_bucket'
                        f'{{op="{op}",le="{bound}"}} {cumulative}')
                cumulative += self.latency[op][-1]
                lines.append(f'repro_server_request_seconds_bucket'
                             f'{{op="{op}",le="+Inf"}} {cumulative}')
                lines.append(f'repro_server_request_seconds_count'
                             f'{{op="{op}"}} {cumulative}')
                lines.append(f'repro_server_request_seconds_sum'
                             f'{{op="{op}"}} '
                             f'{self.latency_sum.get(op, 0.0):.6f}')
        lines.append("# HELP repro_server_cache_hit_ratio Compilation "
                     "cache hits / probes over the daemon lifetime.")
        lines.append("# TYPE repro_server_cache_hit_ratio gauge")
        lines.append(f"repro_server_cache_hit_ratio "
                     f"{self.cache_hit_ratio():.6f}")
        with self._lock:
            compiler_dump = prometheus_from_totals(self.diagnostics_totals)
        return "\n".join(lines) + "\n" + compiler_dump


class _WorkerState:
    """Per-worker-thread warm state: a CompilerService whose memory LRU
    sits over the shared disk store, plus a bounded response cache."""

    def __init__(self, options: CompilerOptions, cache_dir: Optional[str],
                 response_cache_size: int):
        cache = CompilationCache(directory=cache_dir) if cache_dir \
            else CompilationCache()
        self.service = CompilerService(options=options, cache=cache)
        self.responses: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.response_cache_size = max(0, int(response_cache_size))

    def cached_response(self, key: Optional[str], *,
                        want_diagnostics: bool = False
                        ) -> Optional[Dict[str, Any]]:
        """Cached entries always carry diagnostics (the worker compiles
        with them unconditionally); they are stripped per-request here, so
        a requester asking for diagnostics never gets a cached response
        without them.  A legacy entry lacking them forces a recompile."""
        if key is None or key not in self.responses:
            return None
        response = dict(self.responses[key])
        if want_diagnostics and "diagnostics" not in response:
            return None
        self.responses.move_to_end(key)
        if not want_diagnostics:
            response.pop("diagnostics", None)
        counters = dict(response.get("counters", {}))
        counters["response_cache_hits"] = \
            counters.get("response_cache_hits", 0) + 1
        response["counters"] = counters
        response["served_from"] = "response-cache"
        return response

    def remember_response(self, key: Optional[str],
                          response: Mapping[str, Any]) -> None:
        if key is None or self.response_cache_size == 0:
            return
        self.responses[key] = dict(response)
        while len(self.responses) > self.response_cache_size:
            self.responses.popitem(last=False)


class ReproServer:
    """One daemon instance.  Construct, then either ``run()`` (blocking,
    installs signal handlers) or drive ``start()``/``shutdown()`` from an
    existing event loop (the tests do the latter)."""

    def __init__(self, options: Optional[CompilerOptions] = None,
                 *,
                 socket_path: Optional[str] = None,
                 http_addr: Optional[Tuple[str, int]] = None,
                 cache_dir: Optional[str] = None,
                 jobs: int = 1,
                 max_queue: int = 8,
                 request_timeout: float = 120.0,
                 response_cache_size: int = 128,
                 max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES):
        if socket_path is None and http_addr is None:
            raise ValueError("serve needs a unix socket path and/or an "
                             "HTTP address to listen on")
        self.options = options or CompilerOptions()
        self.socket_path = socket_path
        self.http_addr = http_addr
        self.cache_dir = os.fspath(cache_dir) if cache_dir else None
        self.jobs = max(1, int(jobs))
        self.max_queue = max(0, int(max_queue))
        self.request_timeout = request_timeout
        self.response_cache_size = response_cache_size
        self.max_request_bytes = max(1024, int(max_request_bytes))
        self.metrics = ServerMetrics()
        # One monitoring-only service for ping/stats (no compiles run on
        # it, so answering inline from the event loop is safe and cheap).
        self._monitor = CompilerService(options=self.options)

        self._executor = None
        self._local = threading.local()
        self._counter_lock = threading.Lock()
        self._queued = 0
        self._in_flight = 0
        self._outstanding = 0          # accepted, response not yet built
        self._draining = False
        self._conn_tasks: set = set()
        self._servers: List[asyncio.AbstractServer] = []
        self._stop_event: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- worker side (threads) --------------------------------------------

    def _worker(self) -> _WorkerState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = _WorkerState(self.options, self.cache_dir,
                                 self.response_cache_size)
            self._local.state = state
        return state

    def _execute(self, op: str, params: Mapping[str, Any],
                 accepted_at: Optional[float] = None) -> Dict[str, Any]:
        """Runs on a worker thread: one queued wire op.  A traced request
        (one carrying a ``trace_id``) gets ``server_timing`` attached --
        how long it waited for a worker and how long it executed, on the
        server's own clock -- so the client can reconstruct the round
        trip (:func:`repro.trace.build_request_trace`)."""
        with self._counter_lock:
            self._queued -= 1
            self._in_flight += 1
        begun = time.perf_counter()
        try:
            response = self._execute_op(op, params)
            if isinstance(params.get("trace_id"), str):
                response["server_timing"] = {
                    "queue_wait_s": max(begun - accepted_at, 0.0)
                    if accepted_at is not None else 0.0,
                    "execute_s": time.perf_counter() - begun,
                }
            return response
        finally:
            with self._counter_lock:
                self._in_flight -= 1

    def _execute_op(self, op: str, params: Mapping[str, Any]
                    ) -> Dict[str, Any]:
        worker = self._worker()
        request_key = params.get("cache_key")
        if not isinstance(request_key, str):
            request_key = None
        if op == "compile":
            want = bool(params.get("diagnostics", False))
            cached = worker.cached_response(request_key,
                                            want_diagnostics=want)
            if cached is not None:
                return ok_response(op, cached)
            params = {k: v for k, v in params.items()
                      if k != "cache_key"}
            # Always collect diagnostics worker-side: /metrics is fed
            # from them, and the response cache keeps them so a later
            # requester may ask; strip from the response unless asked.
            params = dict(params, diagnostics=True)
            payload = worker.service.handle_op(op, params)
            diagnostics = payload.get("diagnostics")
            if diagnostics is not None:
                self.metrics.merge_diagnostics(diagnostics)
            worker.remember_response(request_key, payload)
            if not want:
                payload = {k: v for k, v in payload.items()
                           if k != "diagnostics"}
            return ok_response(op, payload)
        if op == "batch":
            return ok_response(op, self._execute_batch(worker, params))
        payload = worker.service.handle_op(op, params)
        return ok_response(op, payload)

    def _execute_batch(self, worker: _WorkerState,
                       params: Mapping[str, Any]) -> Dict[str, Any]:
        """The daemon's batch op: like :meth:`CompilerService._handle_batch`
        but each unit may carry a ``cache_key``, answered from (and
        remembered in) the worker's response cache -- this is what makes a
        repeated corpus nearly free."""
        units = params.get("units")
        if not isinstance(units, (list, tuple)) or not units:
            raise ApiError("bad-request",
                           'batch requires a non-empty "units" list of '
                           '{"label", "source"} objects')
        options = options_from_wire(worker.service.options,
                                    params.get("options"))
        prelude = bool(params.get("prelude", False))
        files: List[Dict[str, Any]] = []
        for unit in units:
            if not (isinstance(unit, Mapping)
                    and isinstance(unit.get("source"), str)):
                raise ApiError("bad-request",
                               'each batch unit needs a string "source"')
            label = str(unit.get("label", f"unit-{len(files)}"))
            key = unit.get("cache_key")
            if not isinstance(key, str):
                key = None
            cached = worker.cached_response(key)
            if cached is not None:
                files.append({"path": label, "status": "ok", **cached})
                continue
            try:
                result = worker.service.compile(
                    unit["source"], options=options, load_prelude=prelude,
                    want_diagnostics=True)
            except ReproError as err:
                files.append({"path": label, "status": "error",
                              "error": f"{type(err).__name__}: {err}"})
                continue
            payload = result.to_json()
            diagnostics = payload.get("diagnostics")
            if diagnostics is not None:
                self.metrics.merge_diagnostics(diagnostics)
            # Remember the full payload (diagnostics included) so a later
            # compile op on the same key can ask for them; batch entries
            # themselves never carry per-unit diagnostics.
            worker.remember_response(key, payload)
            slim = {k: v for k, v in payload.items()
                    if k != "diagnostics"}
            files.append({"path": label, "status": "ok", **slim})
        ok = sum(1 for entry in files if entry["status"] == "ok")
        return {"files": files, "ok": ok, "errors": len(files) - ok}

    # -- asyncio side ------------------------------------------------------

    def _queue_depths(self) -> Tuple[int, int]:
        with self._counter_lock:
            return self._queued, self._in_flight

    def _stats_payload(self) -> Dict[str, Any]:
        data = self._monitor.stats()
        queued, in_flight = self._queue_depths()
        data.update({
            "queue_depth": queued,
            "in_flight": in_flight,
            "jobs": self.jobs,
            "max_queue": self.max_queue,
            "draining": self._draining,
            "requests": dict(self.metrics.requests),
            "busy_total": self.metrics.busy,
            "timeouts_total": self.metrics.timeouts,
            "cache_hit_ratio": self.metrics.cache_hit_ratio(),
            "cache_dir": self.cache_dir,
            "recent_requests": self.metrics.recent_requests(),
        })
        return data

    async def _respond(self, request: Any) -> Dict[str, Any]:
        """One parsed request object -> one response object.  Never
        raises: every failure becomes a structured error envelope, and
        every envelope -- success, busy, timeout, internal error --
        carries either the client's echoed ``trace_id`` or a
        server-minted ``request_id``."""
        started = time.perf_counter()
        response = await self._respond_inner(request, started)
        response, request_id = tag_response(response,
                                            request_trace_id(request))
        op = response.get("op") \
            or (response.get("error") or {}).get("code", "?")
        self.metrics.note_request(request_id, op,
                                  time.perf_counter() - started,
                                  bool(response.get("ok")))
        return response

    async def _respond_inner(self, request: Any,
                             accepted_at: float) -> Dict[str, Any]:
        started = accepted_at
        op = "?"
        ok = True
        try:
            op, params = check_request(request)
            if op == "shutdown":
                assert self._loop is not None
                self._loop.create_task(self.shutdown())
                return ok_response("shutdown", {"draining": True})
            if op in INLINE_OPS:
                # Monitoring probes bypass the queue entirely: they must
                # answer even when the worker pool is saturated.
                if op == "ping":
                    return ok_response("ping", self._monitor.ping())
                return ok_response("stats", self._stats_payload())
            if self._draining:
                ok = False
                return error_response(ApiError(
                    "shutting-down", "server is draining; not accepting "
                    "new work"))
            with self._counter_lock:
                if self._queued >= self.max_queue:
                    accepted = False
                else:
                    accepted = True
                    self._queued += 1
                    self._outstanding += 1
            if not accepted:
                self.metrics.count_busy()
                ok = False
                queued, in_flight = self._queue_depths()
                return error_response(ApiError(
                    "busy",
                    f"queue full ({queued} queued, {in_flight} in "
                    f"flight, max-queue {self.max_queue}); retry later"))
            try:
                assert self._loop is not None
                future = self._loop.run_in_executor(
                    self._executor, self._execute, op, dict(params),
                    accepted_at)
                try:
                    response = await asyncio.wait_for(
                        asyncio.shield(future), self.request_timeout)
                except asyncio.TimeoutError:
                    self.metrics.count_timeout()
                    ok = False
                    return error_response(ApiError(
                        "timeout",
                        f"request exceeded {self.request_timeout:.1f}s; "
                        f"the compile keeps running server-side"))
                if not response.get("ok", False):
                    ok = False
                return response
            finally:
                with self._counter_lock:
                    self._outstanding -= 1
        except ApiError as err:
            ok = False
            return error_response(err)
        except Exception as err:  # noqa: BLE001 - envelope, never a crash
            ok = False
            return error_response(err)
        finally:
            self.metrics.observe(op, time.perf_counter() - started, ok)

    # -- unix socket transport (JSON lines) -------------------------------

    async def _handle_socket(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ConnectionResetError:
                    break
                except ValueError:
                    # readline() reports a stream-limit overrun as
                    # ValueError (not LimitOverrunError); the buffered
                    # data is unusable, so answer structurally and drop
                    # the connection.
                    response, _ = tag_response(error_response(ApiError(
                        "too-large",
                        f"request line exceeds the server's "
                        f"{self.max_request_bytes} byte limit")), None)
                    try:
                        writer.write(
                            json.dumps(response).encode("utf-8") + b"\n")
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError,
                            OSError):
                        pass
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = json.loads(line)
                except ValueError as err:
                    response, _ = tag_response(error_response(
                        ApiError("bad-json",
                                 f"unparseable request: {err}")), None)
                else:
                    response = await self._respond(request)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        except asyncio.CancelledError:
            pass  # shutdown drained and is closing idle connections
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    # -- HTTP transport ----------------------------------------------------

    async def _handle_http(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), 30.0)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                    asyncio.LimitOverrunError, ConnectionResetError):
                return
            request_line, _, header_blob = \
                head.decode("latin-1").partition("\r\n")
            parts = request_line.split()
            if len(parts) < 2:
                await self._http_reply(writer, 400, "text/plain",
                                       b"bad request line\n")
                return
            method, path = parts[0].upper(), parts[1]
            headers: Dict[str, str] = {}
            for header in header_blob.split("\r\n"):
                name, _, value = header.partition(":")
                if _:
                    headers[name.strip().lower()] = value.strip()
            if method == "GET" and path.startswith("/metrics"):
                queued, in_flight = self._queue_depths()
                body = self.metrics.render(queued, in_flight)
                await self._http_reply(
                    writer, 200, "text/plain; version=0.0.4",
                    body.encode("utf-8"))
                return
            if method == "GET" and path.startswith("/healthz"):
                body = json.dumps({"ok": True, "api": API_VERSION})
                await self._http_reply(writer, 200, "application/json",
                                       body.encode("utf-8") + b"\n")
                return
            if method != "POST":
                await self._http_reply(writer, 405, "text/plain",
                                       b"use POST / with a JSON body, GET "
                                       b"/metrics, or GET /healthz\n")
                return
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError:
                length = 0
            length = max(0, length)
            if length > self.max_request_bytes:
                body = json.dumps(tag_response(error_response(ApiError(
                    "too-large",
                    f"request body of {length} bytes exceeds the "
                    f"server's {self.max_request_bytes} byte limit")),
                    None)[0])
                await self._http_reply(writer, 413, "application/json",
                                       body.encode("utf-8") + b"\n")
                return
            try:
                body = await reader.readexactly(length) if length else b""
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return
            try:
                request = json.loads(body or b"null")
            except ValueError as err:
                response, _ = tag_response(error_response(
                    ApiError("bad-json",
                             f"unparseable request: {err}")), None)
            else:
                response = await self._respond(request)
            status = 200 if response.get("ok") else 400
            await self._http_reply(
                writer, status, "application/json",
                json.dumps(response).encode("utf-8") + b"\n")
        except asyncio.CancelledError:
            pass  # shutdown drained and is closing idle connections
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _http_reply(self, writer: asyncio.StreamWriter, status: int,
                          content_type: str, body: bytes) -> None:
        reason = {200: "OK", 400: "Bad Request",
                  405: "Method Not Allowed",
                  413: "Payload Too Large"}.get(status, "OK")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-serve")
        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                if _socket_answers(self.socket_path):
                    raise ReproError(
                        f"a daemon is already listening on "
                        f"{self.socket_path}; shut it down first "
                        f"(python -m repro client --server "
                        f"{self.socket_path} --shutdown) or pick "
                        f"another --socket")
                os.unlink(self.socket_path)      # stale leftover
            server = await asyncio.start_unix_server(
                self._handle_socket, path=self.socket_path,
                limit=self.max_request_bytes)
            self._servers.append(server)
        if self.http_addr is not None:
            host, port = self.http_addr
            server = await asyncio.start_server(
                self._handle_http, host=host, port=port,
                limit=self.max_request_bytes)
            self._servers.append(server)

    @property
    def http_port(self) -> Optional[int]:
        """The bound HTTP port (useful when constructed with port 0)."""
        if self.http_addr is None:
            return None
        for server in self._servers:
            for sock in server.sockets or ():
                import socket as _socket

                if sock.family in (_socket.AF_INET, _socket.AF_INET6):
                    return sock.getsockname()[1]
        return self.http_addr[1]

    async def shutdown(self, drain_timeout: float = 60.0) -> None:
        """Stop accepting work, drain in-flight requests, release
        everything.  Idempotent."""
        if self._draining:
            return
        self._draining = True
        for server in self._servers:
            server.close()
        deadline = time.monotonic() + drain_timeout
        while time.monotonic() < deadline:
            with self._counter_lock:
                if self._outstanding == 0:
                    break
            await asyncio.sleep(0.02)
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:  # noqa: BLE001 - best-effort teardown
                pass
        # Close surviving client connections here, while the loop is still
        # healthy, so asyncio.run's teardown never has to cancel them
        # uncleanly (which logs spurious CancelledError tracebacks).
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks),
                                 return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        await self.start()
        assert self._stop_event is not None
        try:
            import signal

            self._loop.add_signal_handler(
                signal.SIGTERM,
                lambda: asyncio.ensure_future(self.shutdown()))
            self._loop.add_signal_handler(
                signal.SIGINT,
                lambda: asyncio.ensure_future(self.shutdown()))
        except (NotImplementedError, RuntimeError):
            pass  # platforms/loops without signal support
        await self._stop_event.wait()

    def run(self) -> int:
        """Blocking entry point for the CLI."""
        where = []
        if self.socket_path is not None:
            where.append(f"unix:{self.socket_path}")
        if self.http_addr is not None:
            where.append(f"http://{self.http_addr[0]}:{self.http_addr[1]}")
        print(f"repro serve: api v{API_VERSION}, jobs={self.jobs}, "
              f"max-queue={self.max_queue}, "
              f"cache={self.cache_dir or '(memory only)'}, "
              f"listening on {', '.join(where)}", flush=True)
        try:
            asyncio.run(self.serve_until_stopped())
        except KeyboardInterrupt:
            pass
        except ReproError as err:
            print(f"repro serve: error: {err}", flush=True)
            return 1
        print("repro serve: drained and stopped", flush=True)
        return 0
