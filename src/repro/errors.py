"""Exception hierarchy for the whole reproduction.

Every package raises subclasses of :class:`ReproError`, so callers can catch
one root type.  The split mirrors the phase structure: reading, conversion to
IR, analysis/optimization, code generation, and run time (interpreter or
simulated machine) each have their own class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of all errors raised by this library."""


class ReaderError(ReproError):
    """Malformed surface syntax."""


class ConversionError(ReproError):
    """Source program cannot be converted to the internal tree (bad special
    form, unbound variable in strict mode, malformed lambda list, ...)."""


class AnalysisError(ReproError):
    """An analysis phase found an inconsistency (internal invariant)."""


class OptimizerError(ReproError):
    """The source-level optimizer detected an internal inconsistency."""


class CodegenError(ReproError):
    """Code generation failed (unsupported construct, allocator overflow)."""


class UnknownTargetError(ReproError, KeyError):
    """``CompilerOptions.target`` names no registered machine description.

    Subclasses ``KeyError`` because the name is a failed registry lookup;
    catching :class:`ReproError` works like everywhere else."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return Exception.__str__(self)


class LispError(ReproError):
    """A run-time error signalled by Lisp execution (interpreter or machine):
    wrong argument types, wrong argument counts, unbound variables, etc."""


class MachineError(ReproError):
    """The simulated S-1 machine trapped (bad opcode, bad address, ...)."""


class WrongTypeError(LispError):
    """Run-time type check failure (e.g. car of a number)."""


class UnboundVariableError(LispError):
    """Reference to an unbound (special) variable."""


class WrongNumberOfArgumentsError(LispError):
    """Function called with an arity its lambda list does not accept."""
