"""Exception hierarchy for the whole reproduction.

Every package raises subclasses of :class:`ReproError`, so callers can catch
one root type.  The split mirrors the phase structure: reading, conversion to
IR, analysis/optimization, code generation, and run time (interpreter or
simulated machine) each have their own class.

Compile-time errors carry a ``location`` -- a
:class:`repro.diagnostics.SourceLocation` (``file:line:column``) taken from
the reader's tokens -- either passed at construction or attached after the
fact via :meth:`ReproError.with_location` (the converter attaches the
nearest enclosing form's position).
"""

from __future__ import annotations

from typing import Optional

from .diagnostics import SourceLocation


class ReproError(Exception):
    """Root of all errors raised by this library."""

    def __init__(self, *args, location: Optional[SourceLocation] = None):
        if location is not None and args and isinstance(args[0], str) \
                and not args[0].startswith(f"{location}:"):
            args = (f"{location}: {args[0]}",) + args[1:]
        super().__init__(*args)
        self.location = location

    def with_location(self, location: Optional[SourceLocation]
                      ) -> "ReproError":
        """Attach a source location if none is known yet; prefixes the
        message with ``file:line:column``.  Returns self for re-raising."""
        if location is not None and getattr(self, "location", None) is None:
            self.location = location
            if self.args and isinstance(self.args[0], str):
                self.args = (f"{location}: {self.args[0]}",) + self.args[1:]
        return self


class ReaderError(ReproError):
    """Malformed surface syntax."""


class ConversionError(ReproError):
    """Source program cannot be converted to the internal tree (bad special
    form, unbound variable in strict mode, malformed lambda list, ...)."""


class AnalysisError(ReproError):
    """An analysis phase found an inconsistency (internal invariant)."""


class OptimizerError(ReproError):
    """The source-level optimizer detected an internal inconsistency."""


class CodegenError(ReproError):
    """Code generation failed (unsupported construct, allocator overflow)."""


class UnknownTargetError(ReproError, KeyError):
    """``CompilerOptions.target`` names no registered machine description.

    Subclasses ``KeyError`` because the name is a failed registry lookup;
    catching :class:`ReproError` works like everywhere else."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return Exception.__str__(self)


class VerificationError(ReproError):
    """A phase-boundary invariant violation found by repro.verify.

    Carries the structured :class:`repro.verify.Violation` records so
    harnesses can report check names and phases, not just a message."""

    def __init__(self, *args, violations=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.violations = list(violations or [])


class LispError(ReproError):
    """A run-time error signalled by Lisp execution (interpreter or machine):
    wrong argument types, wrong argument counts, unbound variables, etc."""


class MachineError(ReproError):
    """The simulated S-1 machine trapped (bad opcode, bad address, ...)."""


class WrongTypeError(LispError):
    """Run-time type check failure (e.g. car of a number)."""


class UnboundVariableError(LispError):
    """Reference to an unbound (special) variable."""


class WrongNumberOfArgumentsError(LispError):
    """Function called with an arity its lambda list does not accept."""
