"""Linear-block packing: the peephole phase the paper anticipates.

Section 4.5: "The one optimization for which we may need to add a peephole
optimizer is branch tensioning.  It is very difficult to express the
elimination of branches to branch instructions at the source level, because
branch instructions do not appear in the internal tree ...  Rather than
building a peephole optimizer, however, we have in mind experimenting with
a global process for packing linear blocks that would handle branch
tensioning ..." -- and Table 1 brackets "[Peephole optimizer.  Perform
cross-jumping and branch tensioning.]".

This module is that global block-packing process:

* the instruction stream is parsed into basic blocks,
* **branch tensioning**: a branch to an unconditional JMP retargets to the
  final destination; a JMP to a RET becomes the RET,
* **cross-jumping**: blocks with identical code and identical control exits
  merge (labels redirect to one copy),
* **unreachable blocks** are dropped,
* relinearization omits JMPs to the fall-through block.

Like the paper's optimizer phases it is optional
(``CompilerOptions.enable_peephole``; off by default, since the paper's
compiler "currently [had] no peephole optimizer").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..machine.isa import CodeObject, Instruction

# Opcodes that end a block and never fall through.
_TERMINATORS = {"JMP", "RET", "TAILCALL", "TAILCALLF"}
# Conditional branches: may fall through, have a label operand.
_CONDITIONALS = {"JUMPNIL", "JUMPNNIL", "CMPBR", "EQLBR"}
# Non-branch instructions with label operands that must stay intact.
_LABEL_USERS = {"CLOSURE", "CATCHPUSH", "ARGDISPATCH"}


@dataclass
class Block:
    labels: List[str] = field(default_factory=list)
    instructions: List[Instruction] = field(default_factory=list)
    # The next block in original order (fallthrough), by index; None if the
    # block ends in a terminator.
    fallthrough: Optional[int] = None


@dataclass
class PeepholeStats:
    branches_tensioned: int = 0
    blocks_merged: int = 0
    blocks_removed: int = 0
    jumps_elided: int = 0

    def as_rule_counts(self) -> Dict[str, int]:
        """Nonzero counters named like optimizer rules, for merging into
        ``Diagnostics.rule_fires`` alongside the META-* transcript rules."""
        counts = {
            "PEEPHOLE-BRANCH-TENSION": self.branches_tensioned,
            "PEEPHOLE-CROSS-JUMP": self.blocks_merged,
            "PEEPHOLE-UNREACHABLE-BLOCK": self.blocks_removed,
            "PEEPHOLE-JUMP-ELISION": self.jumps_elided,
        }
        return {name: count for name, count in counts.items() if count}


def optimize_code(code: CodeObject) -> Tuple[CodeObject, PeepholeStats]:
    """Run the block-packing pass; returns a new CodeObject and stats."""
    stats = PeepholeStats()
    blocks = _split_blocks(code)
    label_to_block = _label_map(blocks)
    _tension_branches(blocks, label_to_block, stats)
    _cross_jump(blocks, label_to_block, stats)
    keep = _reachable(blocks, label_to_block)
    stats.blocks_removed = len(blocks) - len(keep)
    instructions, labels = _relinearize(blocks, keep, label_to_block, stats)
    result = CodeObject(
        name=code.name,
        instructions=instructions,
        labels=labels,
        n_temps=code.n_temps,
        arity_min=code.arity_min,
        arity_max=code.arity_max,
        source=code.source,
        target=code.target,
        source_file=code.source_file,
    )
    result.rebuild_line_map()
    result.moves_inserted = getattr(code, "moves_inserted", 0)  # type: ignore[attr-defined]
    return result, stats


# ---------------------------------------------------------------------------
# Block construction
# ---------------------------------------------------------------------------

def _split_blocks(code: CodeObject) -> List[Block]:
    index_to_labels: Dict[int, List[str]] = {}
    for label, index in code.labels.items():
        index_to_labels.setdefault(index, []).append(label)

    leaders: Set[int] = {0}
    leaders.update(code.labels.values())
    for i, instruction in enumerate(code.instructions):
        if instruction.opcode in _TERMINATORS | _CONDITIONALS \
                or instruction.opcode == "ARGDISPATCH":
            leaders.add(i + 1)
    leaders = {i for i in leaders if i <= len(code.instructions)}

    ordered = sorted(leaders)
    blocks: List[Block] = []
    for n, start in enumerate(ordered):
        end = ordered[n + 1] if n + 1 < len(ordered) else len(code.instructions)
        block = Block(
            labels=sorted(index_to_labels.get(start, [])),
            instructions=list(code.instructions[start:end]),
        )
        blocks.append(block)
    # Fallthrough linkage.
    for n, block in enumerate(blocks):
        last = block.instructions[-1] if block.instructions else None
        if last is not None and last.opcode in _TERMINATORS:
            block.fallthrough = None
        elif n + 1 < len(blocks):
            block.fallthrough = n + 1
        else:
            block.fallthrough = None
    # Labels pointing one past the end need a home: an empty final block.
    end_labels = index_to_labels.get(len(code.instructions), [])
    if end_labels:
        if blocks and not blocks[-1].instructions:
            blocks[-1].labels.extend(end_labels)
        else:
            blocks.append(Block(labels=sorted(end_labels)))
    return blocks


def _label_map(blocks: List[Block]) -> Dict[str, int]:
    mapping: Dict[str, int] = {}
    for index, block in enumerate(blocks):
        for label in block.labels:
            mapping[label] = index
    return mapping


def _branch_targets(instruction: Instruction) -> List[str]:
    targets: List[str] = []
    for operand in instruction.operands:
        if isinstance(operand, tuple) and operand and operand[0] == "label":
            targets.append(operand[1])
        elif isinstance(operand, tuple) and operand and operand[0] == "imm" \
                and isinstance(operand[1], list):
            targets.extend(label for _, label in operand[1])
    return targets


# ---------------------------------------------------------------------------
# Branch tensioning
# ---------------------------------------------------------------------------

def _final_destination(label: str, blocks: List[Block],
                       label_to_block: Dict[str, int]) -> Tuple[str, Optional[Instruction]]:
    """Follow chains of bare-JMP blocks.  Returns (final_label, ret) where
    ret is the RET instruction if the chain ends at a bare RET block."""
    seen: Set[str] = set()
    current = label
    while current not in seen:
        seen.add(current)
        index = label_to_block.get(current)
        if index is None:
            return current, None
        block = blocks[index]
        if len(block.instructions) == 1:
            only = block.instructions[0]
            if only.opcode == "JMP":
                current = only.operands[0][1]
                continue
            if only.opcode == "RET":
                return current, only
        if not block.instructions and block.fallthrough is not None:
            next_block = blocks[block.fallthrough]
            if next_block.labels:
                current = next_block.labels[0]
                continue
        break
    return current, None


def _retarget(instruction: Instruction, old: str, new: str) -> Instruction:
    operands = []
    for operand in instruction.operands:
        if isinstance(operand, tuple) and operand and operand[0] == "label" \
                and operand[1] == old:
            operands.append(("label", new))
        elif isinstance(operand, tuple) and operand and operand[0] == "imm" \
                and isinstance(operand[1], list):
            operands.append(("imm", [(n, new if lab == old else lab)
                                     for n, lab in operand[1]]))
        else:
            operands.append(operand)
    return Instruction(instruction.opcode, tuple(operands),
                       instruction.comment, line=instruction.line)


def _tension_branches(blocks: List[Block], label_to_block: Dict[str, int],
                      stats: PeepholeStats) -> None:
    for block in blocks:
        for i, instruction in enumerate(block.instructions):
            if instruction.opcode in _LABEL_USERS:
                continue  # entry points, not control transfers
            for target in _branch_targets(instruction):
                final, ret = _final_destination(target, blocks, label_to_block)
                if ret is not None and instruction.opcode == "JMP":
                    block.instructions[i] = Instruction(
                        "RET", ret.operands, ret.comment,
                        line=instruction.line)
                    stats.branches_tensioned += 1
                    break
                if final != target:
                    block.instructions[i] = _retarget(
                        block.instructions[i], target, final)
                    stats.branches_tensioned += 1


# ---------------------------------------------------------------------------
# Cross-jumping (block-granularity: merge identical blocks)
# ---------------------------------------------------------------------------

def _block_signature(block: Block, blocks: List[Block]) -> Optional[str]:
    """A merge key for blocks with no fallthrough dependence: identical
    instructions and a terminating end."""
    if not block.instructions:
        return None
    last = block.instructions[-1]
    if last.opcode not in _TERMINATORS:
        return None
    return "\n".join(i.render() for i in block.instructions)


def _cross_jump(blocks: List[Block], label_to_block: Dict[str, int],
                stats: PeepholeStats) -> None:
    by_signature: Dict[str, int] = {}
    redirect: Dict[int, int] = {}
    for index, block in enumerate(blocks):
        signature = _block_signature(block, blocks)
        if signature is None:
            continue
        existing = by_signature.get(signature)
        if existing is None:
            by_signature[signature] = index
        else:
            redirect[index] = existing
            stats.blocks_merged += 1
    if not redirect:
        return
    # Point the duplicate's labels at the surviving copy and empty it; a
    # predecessor falling into the duplicate gets an explicit JMP.
    for dup_index, keep_index in redirect.items():
        keeper = blocks[keep_index]
        if not keeper.labels:
            keeper.labels.append(f"xj{keep_index:04d}")
        target_label = keeper.labels[0]
        dup = blocks[dup_index]
        for label in dup.labels:
            label_to_block[label] = keep_index
        keeper.labels.extend(dup.labels)
        dup.labels = []
        dup.instructions = [Instruction("JMP", (("label", target_label),))]
        dup.fallthrough = None
    # Rebuild the label map from scratch (labels moved between blocks).
    label_to_block.clear()
    label_to_block.update(_label_map(blocks))


# ---------------------------------------------------------------------------
# Reachability and relinearization
# ---------------------------------------------------------------------------

def _reachable(blocks: List[Block], label_to_block: Dict[str, int]
               ) -> List[int]:
    seen: Set[int] = set()
    pending = [0] if blocks else []
    while pending:
        index = pending.pop()
        if index in seen or index >= len(blocks):
            continue
        seen.add(index)
        block = blocks[index]
        if block.fallthrough is not None:
            pending.append(block.fallthrough)
        for instruction in block.instructions:
            for target in _branch_targets(instruction):
                target_index = label_to_block.get(target)
                if target_index is not None:
                    pending.append(target_index)
    return sorted(seen)


def _relinearize(blocks: List[Block], keep: List[int],
                 label_to_block: Dict[str, int], stats: PeepholeStats
                 ) -> Tuple[List[Instruction], Dict[str, int]]:
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    for order, index in enumerate(keep):
        block = blocks[index]
        for label in block.labels:
            labels[label] = len(instructions)
        body = list(block.instructions)
        # Elide a trailing JMP to the next emitted block.
        if body and body[-1].opcode == "JMP":
            target = body[-1].operands[0][1]
            target_index = label_to_block.get(target)
            if target_index is not None and order + 1 < len(keep) \
                    and keep[order + 1] == target_index:
                body.pop()
                stats.jumps_elided += 1
        instructions.extend(body)
        # A block that used to fall through to a now-distant block needs an
        # explicit JMP (can happen after merging).
        if block.fallthrough is not None and body == block.instructions:
            next_kept = keep[order + 1] if order + 1 < len(keep) else None
            if block.fallthrough != next_kept:
                fall = blocks[block.fallthrough]
                if not fall.labels:
                    fall.labels.append(f"ft{block.fallthrough:04d}")
                    label_to_block[fall.labels[0]] = block.fallthrough
                instructions.append(
                    Instruction("JMP", (("label", fall.labels[0]),)))
    return instructions, labels
