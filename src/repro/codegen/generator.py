"""Code generation (Table 1: "Generate code in a single pass over the tree
... partly procedural and partly table-driven").

The generator walks the fully annotated tree once per function, emitting a
*virtual* instruction stream whose value operands are TNs.  After the walk,
TNBIND packs the TNs (`repro.tnbind`), operands are resolved to registers
and stack slots, and a legalization pass enforces the S-1's "2 1/2-address"
constraint on arithmetic (inserting MOVs only where the RT-register dance
fails -- the count of inserted MOVs is the E4 experiment's metric).

Lambda compilation follows the binding annotation (Section 4.4):

* ``let`` and jump-strategy lambdas compile in-line in the current frame;
  calls to them are parameter-passing gotos (argument MOVs plus a JMP),
* fast-call lambdas without free variables become labeled fast-entry
  functions reached by KCALL (no arity checking),
* everything else builds a run-time closure object.

Pdl numbers: where the annotation authorized one (Section 6.3), a raw
number needing pointer form goes to a scratch stack slot via PDLBOX instead
of a heap BOXF.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..annotate import annotate
from ..annotate.pdl import wants_pdl_allocation
from ..annotate.specials import SpecialCachePlan
from ..datum import NIL, T
from ..datum.symbols import Symbol, sym
from ..errors import CodegenError
from ..ir.nodes import (
    CallNode,
    CaseqNode,
    CatcherNode,
    FunctionRefNode,
    GoNode,
    IfNode,
    LambdaNode,
    LiteralNode,
    Node,
    PrognNode,
    ProgbodyNode,
    ReturnNode,
    SetqNode,
    STRATEGY_FAST_CALL,
    STRATEGY_FULL_CLOSURE,
    STRATEGY_JUMP,
    TagMarker,
    Variable,
    VarRefNode,
)
from ..machine.isa import (
    CYCLES,
    CodeObject,
    Instruction,
    RAW_BINARY_OPS,
    RAW_UNARY_OPS,
)
from ..options import CompilerOptions
from ..primitives import Primitive, lookup_primitive
from ..target.registers import RTA, RTB
from ..target.reps import JUMP, NONE, POINTER, SWFIX, SWFLO, is_numeric
from ..tnbind import KIND_PDL, KIND_TEMP, KIND_VAR, TN, pack_tns
from ..analysis.envinfo import free_variables

_LABELS = itertools.count(1)


def _fresh_label(stem: str) -> str:
    return f"{stem}{next(_LABELS):04d}"


# Raw machine instructions for two-operand primitives.
_RAW_BINOPS = {
    "+$f": "FADD", "-$f": "FSUB", "*$f": "FMULT", "/$f": "FDIV",
    "max$f": "FMAX", "min$f": "FMIN",
    "+&": "ADD", "-&": "SUB", "*&": "MULT", "/&": "DIV",
    # "There are single instructions for complex arithmetic" (Section 3):
    # the same FADD/FMULT data path handles SWCPLX words.
    "+$c": "FADD", "-$c": "FSUB", "*$c": "FMULT", "/$c": "FDIV",
}

_RAW_UNOPS = {
    "abs$f": "FABS", "sqrt$f": "FSQRT", "sin$f": "FSINR", "cos$f": "FCOSR",
    "sinc$f": "FSIN", "cosc$f": "FCOS", "float": "FLT", "fix": "FIX",
}

# Vector hardware instructions (Section 3): args are vectors (pointers);
# VDOT/VSUM deliver raw floats, VADD/VSCALE deliver fresh vectors.
_VECTOR_OPS = {
    "vdot$f": ("VDOT", 2, "SWFLO"),
    "vsum$f": ("VSUM", 1, "SWFLO"),
    "vadd$f": ("VADD", 2, "POINTER"),
    "vscale$f": ("VSCALE", 2, "POINTER"),
}

_RAW_COMPARES = {
    "=$f": "eq", "<$f": "lt", ">$f": "gt",
    "=&": "eq", "<&": "lt", ">&": "gt", "<=&": "le", ">=&": "ge",
}


@dataclass
class FrameInfo:
    """Compilation state for one activation frame."""

    lambda_node: Optional[LambdaNode]
    variables: Dict[Variable, Any] = field(default_factory=dict)
    special_cells: Dict[Symbol, TN] = field(default_factory=dict)
    spec_depth: int = 0
    env_map: Dict[Variable, int] = field(default_factory=dict)
    cache_plan: Optional[SpecialCachePlan] = None


@dataclass
class _Section:
    kind: str  # "fast" | "closure" | "jumpbody"
    label: str
    lambda_node: LambdaNode
    frame: FrameInfo  # frame to compile in (jumpbody) or parent frame info


class JumpLambdaInfo:
    """A lambda compiled as parameter-passing gotos within this frame."""

    __slots__ = ("label", "param_tns", "lambda_node", "emitted")

    def __init__(self, label: str, param_tns: List[TN],
                 lambda_node: LambdaNode):
        self.label = label
        self.param_tns = param_tns
        self.lambda_node = lambda_node
        self.emitted = False


class FunctionCodegen:
    """Generates one CodeObject (a function plus its nested sections)."""

    def __init__(self, name: str, root: LambdaNode,
                 options: CompilerOptions,
                 plans: Dict[LambdaNode, SpecialCachePlan]):
        self.name = name
        self.root = root
        self.options = options
        from ..target.machines import get_target

        self.target = get_target(options.target)
        self.plans = plans
        self.vcode: List[Instruction] = []
        self.tns: List[TN] = []
        self.call_ticks: List[int] = []
        self.sections: List[_Section] = []
        self.alloctemps_indices: List[int] = []
        self.moves_inserted = 0
        self.tnbind_seconds = 0.0
        self.tnbind_started = 0.0
        self.tns_packed = 0
        self.packing = None
        self.pack_options = options
        # node id -> [special symbols] whose lookup caches here
        self.cache_triggers: Dict[int, List[Symbol]] = {}
        # variables let-bound to known (jump/fast) lambdas
        self._known_lambda_map: Dict[Variable, LambdaNode] = {}
        # lexically enclosing progbodies during compilation
        self._progbody_stack: List[Tuple[Any, ...]] = []
        # Source position tracking: _note_source updates this from each
        # node's reader position; emit() stamps it onto instructions so
        # the profiler can attribute cycles to source lines.
        self._current_line: Optional[int] = None
        self.source_file: Optional[str] = None

    # -- emission helpers ---------------------------------------------------

    def emit(self, opcode: str, *operands: Any, comment: Optional[str] = None
             ) -> Instruction:
        tick = len(self.vcode)
        instruction = Instruction(opcode, tuple(operands), comment,
                                  line=self._current_line)
        self.vcode.append(instruction)
        if opcode in ("CALL", "CALLF", "APPLYF", "GENERIC"):
            # GENERIC of an impure primitive can run arbitrary user code?
            # No -- generics are primitives; only full calls clobber
            # registers.  GENERIC excluded below.
            if opcode != "GENERIC":
                self.call_ticks.append(tick)
        # TN lifetime bookkeeping.
        writes_first = opcode not in ("PUSH", "JUMPNIL", "JUMPNNIL", "RET",
                                      "CMPBR", "EQLBR", "CELLSET", "SPECSET",
                                      "SPECBIND", "TAILCALLF", "CATCHPUSH",
                                      "MOV_NODEF")
        for index, operand in enumerate(operands):
            if isinstance(operand, tuple) and operand and operand[0] == "tn":
                tn = operand[1]
                is_write = writes_first and index == 0 and opcode not in (
                    "PUSH",)
                tn.touch(tick, write=is_write)
            elif isinstance(operand, tuple) and operand \
                    and operand[0] == "pdlslot":
                operand[1].touch(tick, write=True)
        return instruction

    def emit_label(self, label: str) -> None:
        self.vcode.append(Instruction("LABEL", (("label", label),)))

    def new_tn(self, kind: str = KIND_TEMP, rep: str = POINTER,
               hint: Optional[str] = None) -> TN:
        tn = TN(kind, rep, hint)
        self.tns.append(tn)
        return tn

    def tn_ref(self, tn: TN) -> Tuple[str, TN]:
        return ("tn", tn)

    # -- top level ------------------------------------------------------------

    def generate(self) -> CodeObject:
        self._prepare_cache_triggers()
        # Seed line tracking from the root lambda so functions whose whole
        # body was rewritten (optimizer nodes carry no reader position)
        # still attribute to their defining form.
        self._note_source(self.root)
        frame = self._compile_function_entry(self.root, fast=False)
        self._compile_tail(self.root.body, frame)
        self._drain_sections()
        return self._assemble()

    def _prepare_cache_triggers(self) -> None:
        for plan in self.plans.values():
            for symbol, node in plan.cache_points.items():
                self.cache_triggers.setdefault(id(node), []).append(symbol)

    def _drain_sections(self) -> None:
        while self.sections:
            section = self.sections.pop(0)
            if section.kind == "jumpbody":
                self._emit_jump_body(section)
            elif section.kind == "fast":
                self._emit_fast_function(section)
            elif section.kind == "closure":
                self._emit_closure_body(section)

    # -- function entries ---------------------------------------------------------

    def _compile_function_entry(self, node: LambdaNode, fast: bool,
                                entry_label: Optional[str] = None
                                ) -> FrameInfo:
        frame = FrameInfo(lambda_node=node,
                          cache_plan=self.plans.get(node))
        if entry_label:
            self.emit_label(entry_label)
        n_required = len(node.required)
        n_fixed = n_required + len(node.optionals)
        has_rest = node.rest is not None

        if not fast:
            self.emit("ARGCHECK", ("imm", node.min_args()),
                      ("imm", node.max_args()),
                      comment=f"arity {node.min_args()}..{node.max_args()}")

        if node.optionals:
            self._compile_optional_entry(node, frame, n_required, n_fixed,
                                         has_rest)
        else:
            if has_rest:
                self.emit("RESTCOLLECT", ("imm", n_fixed),
                          comment="collect &rest into a list")
            self._emit_alloctemps()
            self._bind_frame_parameters(node, frame)
        self._emit_entry_lookups(frame)
        return frame

    def _emit_alloctemps(self) -> None:
        self.alloctemps_indices.append(len(self.vcode))
        self.emit("ALLOCTEMPS", ("imm", 0))

    def _compile_optional_entry(self, node: LambdaNode, frame: FrameInfo,
                                n_required: int, n_fixed: int,
                                has_rest: bool = False) -> None:
        """Table 4's shape: dispatch on argument count; each case sets up
        the frame and computes defaults for unsupplied parameters.  With a
        &rest parameter there is one extra catch-all case that collects the
        surplus arguments into a list."""
        body_label = _fresh_label("body")
        total = n_fixed + (1 if has_rest else 0)
        cases = []
        for count in range(n_required, n_fixed + 1):
            cases.append((count, _fresh_label(f"args{count}")))
        if has_rest:
            # Any surplus count lands here (ARGDISPATCH's None matches all).
            cases.append((None, _fresh_label("argsrest")))
        self.emit("ARGDISPATCH", ("imm", cases),
                  comment="dispatch on number of arguments")
        for count, label in cases:
            self.emit_label(label)
            if count is None:
                # nargs > n_fixed: gather the surplus into the rest list.
                self.emit("RESTCOLLECT", ("imm", n_fixed),
                          comment="collect &rest into a list")
            else:
                self.emit("ARGEXPAND", ("imm", total),
                          comment="push slots for missing parameters")
            self._emit_alloctemps()
            # Bind required params (frame slots) so defaults can see them.
            local = FrameInfo(lambda_node=node, cache_plan=frame.cache_plan)
            for i, variable in enumerate(node.required):
                local.variables[variable] = ("frame", i)
            for j, opt in enumerate(node.optionals):
                index = n_required + j
                if count is None or index < count:
                    local.variables[opt.variable] = ("frame", index)
                    continue
                value = self._compile_value(opt.default, local, POINTER)
                self.emit("MOV", ("frame", index), value,
                          comment=f"default for parameter {opt.variable.name}")
                local.variables[opt.variable] = ("frame", index)
            self.emit("JMP", ("label", body_label))
        self.emit_label(body_label)
        self._bind_frame_parameters(node, frame)

    def _bind_frame_parameters(self, node: LambdaNode, frame: FrameInfo
                               ) -> None:
        """Map parameters to frame slots; wrap heap-allocated ones in cells
        and push special ones onto the binding stack."""
        all_params = list(node.required) + \
            [opt.variable for opt in node.optionals] + \
            ([node.rest] if node.rest is not None else [])
        for index, variable in enumerate(all_params):
            access: Any = ("frame", index)
            if variable.special:
                self.emit("SPECBIND", ("name", variable.name), access,
                          comment=f"deep-bind special {variable.name}")
                frame.spec_depth += 1
                continue
            if variable.heap_allocated:
                cell_tn = self.new_tn(KIND_VAR, POINTER,
                                      f"cell:{variable.name}")
                cell_tn.crosses_call = True
                self.emit("MKCELL", self.tn_ref(cell_tn), access,
                          comment=f"heap cell for captured {variable.name}")
                access = ("cell", self.tn_ref(cell_tn))
            elif variable.rep is not None and is_numeric(variable.rep):
                # A declared raw parameter: arguments arrive as pointers by
                # the uniform calling convention; unbox once at entry.
                var_tn = self.new_tn(KIND_VAR, variable.rep,
                                     str(variable.name))
                self.emit("UNBOX", self.tn_ref(var_tn), access,
                          comment=f"unbox declared {variable.rep} parameter "
                                  f"{variable.name}")
                access = ("tn", var_tn)
            frame.variables[variable] = access

    def _emit_entry_lookups(self, frame: FrameInfo) -> None:
        """SPECLOOKUPs whose cache point is the lambda body itself are done
        at entry; finer points trigger during the body walk."""
        # (handled uniformly by _maybe_cache_specials at each node)

    def _maybe_cache_specials(self, node: Node, frame: FrameInfo) -> None:
        symbols = self.cache_triggers.get(id(node))
        if not symbols:
            return
        for symbol in symbols:
            if symbol in frame.special_cells:
                continue
            cell_tn = self.new_tn(KIND_VAR, POINTER, f"spec:{symbol}")
            cell_tn.crosses_call = True
            self.emit("SPECLOOKUP", self.tn_ref(cell_tn), ("name", symbol),
                      comment=f"cache deep-binding lookup of {symbol}")
            frame.special_cells[symbol] = cell_tn

    # -- variable access ---------------------------------------------------------

    def _read_variable(self, variable: Variable, frame: FrameInfo,
                       want: str) -> Any:
        if variable.special:
            dst = self.new_tn(KIND_TEMP, POINTER, str(variable.name))
            cell = frame.special_cells.get(variable.name)
            if cell is not None and self.options.enable_special_caching:
                self.emit("SPECREF", self.tn_ref(dst), self.tn_ref(cell),
                          ("name", variable.name))
            else:
                self.emit("SPECGREF", self.tn_ref(dst),
                          ("name", variable.name),
                          comment=f"deep search for {variable.name}")
            return self._coerce(self.tn_ref(dst), POINTER, want, None)
        access = frame.variables.get(variable)
        if access is None:
            raise CodegenError(f"variable {variable!r} has no location "
                               f"(escaped its compilation frame?)")
        kind = access[0]
        if kind == "cell":
            dst = self.new_tn(KIND_TEMP, POINTER, str(variable.name))
            self.emit("CELLREF", self.tn_ref(dst),
                      self._cell_operand(access[1]))
            return self._coerce(self.tn_ref(dst), POINTER, want, None)
        if kind == "env":
            dst = self.new_tn(KIND_TEMP, POINTER, str(variable.name))
            self.emit("ENVREF", self.tn_ref(dst), ("imm", access[1]))
            return self._coerce(self.tn_ref(dst), POINTER, want, None)
        rep = variable.rep or POINTER
        return self._coerce(access, rep, want, None)

    def _write_variable(self, variable: Variable, frame: FrameInfo,
                        value: Any, value_rep: str,
                        value_node: Optional[Node] = None) -> None:
        if variable.special:
            pointer = self._coerce(value, value_rep, POINTER, value_node)
            cell = frame.special_cells.get(variable.name)
            if cell is not None and self.options.enable_special_caching:
                self.emit("SPECSET", self.tn_ref(cell), pointer)
            else:
                tmp = self.new_tn(KIND_TEMP, POINTER)
                self.emit("SPECLOOKUP", self.tn_ref(tmp),
                          ("name", variable.name))
                self.emit("SPECSET", self.tn_ref(tmp), pointer)
            return
        access = frame.variables.get(variable)
        if access is None:
            raise CodegenError(f"variable {variable!r} has no location")
        if access[0] == "cell":
            # Cells are heap objects: storing into one is unsafe, so the
            # value must be a certified (heap) pointer, never a pdl number.
            pointer = self._coerce(value, value_rep, POINTER, None)
            self.emit("CELLSET", self._cell_operand(access[1]), pointer)
            return
        if access[0] == "env":
            raise CodegenError(
                f"assignment to immutable captured variable {variable!r}")
        target_rep = variable.rep or POINTER
        converted = self._coerce(value, value_rep, target_rep, value_node)
        self.emit("MOV", access, converted)

    def _cell_operand(self, cell_access: Any) -> Any:
        """A cell lives either in a TN of this frame or in an env slot of
        the current closure; fetch the latter into a TN first."""
        if isinstance(cell_access, tuple) and cell_access[0] == "env-cell":
            tmp = self.new_tn(KIND_TEMP, POINTER, "envcell")
            self.emit("ENVREF", self.tn_ref(tmp), ("imm", cell_access[1]))
            return self.tn_ref(tmp)
        return cell_access

    # -- coercions -----------------------------------------------------------------

    def _coerce(self, operand: Any, from_rep: str, to_rep: str,
                node: Optional[Node]) -> Any:
        if from_rep == to_rep or to_rep in (NONE, JUMP):
            return operand
        if from_rep == POINTER and is_numeric(to_rep):
            dst = self.new_tn(KIND_TEMP, to_rep)
            self.emit("UNBOX", self.tn_ref(dst), operand)
            return self.tn_ref(dst)
        if is_numeric(from_rep) and to_rep == POINTER:
            return self._box(operand, from_rep, node)
        if from_rep == SWFIX and from_rep != to_rep and is_numeric(to_rep):
            dst = self.new_tn(KIND_TEMP, to_rep)
            self.emit("FLT", self.tn_ref(dst), operand)
            return self.tn_ref(dst)
        if is_numeric(from_rep) and to_rep == SWFIX:
            dst = self.new_tn(KIND_TEMP, to_rep)
            self.emit("FIX", self.tn_ref(dst), operand)
            return self.tn_ref(dst)
        if from_rep == "BIT" and to_rep == POINTER:
            return operand  # predicates already deliver nil/t pointers
        if from_rep == POINTER and to_rep == "BIT":
            return operand
        if is_numeric(from_rep) and is_numeric(to_rep):
            return operand  # width adjustments are free in simulation
        raise CodegenError(f"cannot coerce {from_rep} -> {to_rep}")

    def _box(self, operand: Any, from_rep: str, node: Optional[Node]) -> Any:
        """Raw number -> pointer.  Uses a pdl slot when the annotation
        authorized one; otherwise a heap box.  Fixnums are immediate
        (self-tagging words): a plain MOV."""
        dst = self.new_tn(KIND_TEMP, POINTER)
        if from_rep == SWFIX:
            self.emit("MOV", self.tn_ref(dst), operand)
            return self.tn_ref(dst)
        if (node is not None and self.options.enable_pdl_numbers
                and wants_pdl_allocation(node)):
            pdl_tn = self.new_tn(KIND_PDL, from_rep, "pdlnum")
            node.pdl_tn = pdl_tn
            self.emit("PDLBOX", self.tn_ref(dst), ("pdlslot", pdl_tn),
                      operand, comment="install value for PDL-allocated number")
            return self.tn_ref(dst)
        self.emit("BOXF", self.tn_ref(dst), operand,
                  comment="heap-allocate number box")
        return self.tn_ref(dst)

    # -- expression compilation ---------------------------------------------------

    def _note_source(self, node: Node) -> None:
        """Track the reader position of the form being compiled.  Positions
        stick: optimizer-introduced nodes (no .source) inherit the nearest
        enclosing positioned form's line."""
        src = node.source
        if src is None:
            return
        pos = getattr(src, "source_pos", None)
        if pos is not None:
            self._current_line = pos.line
            if self.source_file is None:
                self.source_file = pos.file

    def _compile_tail(self, node: Node, frame: FrameInfo) -> None:
        """Compile *node* in tail position: control does not return."""
        self._note_source(node)
        self._maybe_cache_specials(node, frame)
        if isinstance(node, IfNode):
            false_label = _fresh_label("else")
            self._compile_test(node.test, frame, false_label)
            self._compile_tail(node.then, frame)
            self.emit_label(false_label)
            self._compile_tail(node.else_, frame)
            return
        if isinstance(node, PrognNode):
            for form in node.forms[:-1]:
                self._compile_effect(form, frame)
            self._compile_tail(node.forms[-1], frame)
            return
        if isinstance(node, CallNode):
            self._compile_call(node, frame, tail=True)
            return
        if isinstance(node, CaseqNode):
            self._compile_caseq(node, frame, tail=True)
            return
        if isinstance(node, ProgbodyNode):
            self._compile_progbody(node, frame, tail=True)
            return
        value = self._compile_value(node, frame, POINTER)
        self._emit_return(value, frame)

    def _emit_return(self, operand: Any, frame: FrameInfo) -> None:
        if frame.spec_depth > 0:
            self.emit("SPECUNBIND", ("imm", frame.spec_depth),
                      comment="unbind specials before exit")
        self.emit("RET", operand)

    def _compile_effect(self, node: Node, frame: FrameInfo) -> None:
        self._compile_value(node, frame, NONE)

    def _compile_value(self, node: Node, frame: FrameInfo, want: str) -> Any:
        """Compile for value; returns an operand holding the result in
        representation *want* (or nothing meaningful when want is NONE)."""
        self._note_source(node)
        self._maybe_cache_specials(node, frame)
        if isinstance(node, LiteralNode):
            return self._compile_literal(node, want)
        if isinstance(node, VarRefNode):
            return self._read_variable(node.variable, frame, want)
        if isinstance(node, FunctionRefNode):
            dst = self.new_tn(KIND_TEMP, POINTER, str(node.name))
            self.emit("GFUNC", self.tn_ref(dst), ("name", node.name))
            return self._coerce(self.tn_ref(dst), POINTER, want, node)
        if isinstance(node, SetqNode):
            value_rep = self._value_rep_for(node.value)
            value = self._compile_value(node.value, frame, value_rep)
            self._write_variable(node.variable, frame, value, value_rep,
                                 node.value)
            return self._coerce(value, value_rep, want, node)
        if isinstance(node, IfNode):
            return self._compile_if_value(node, frame, want)
        if isinstance(node, PrognNode):
            for form in node.forms[:-1]:
                self._compile_effect(form, frame)
            return self._compile_value(node.forms[-1], frame, want)
        if isinstance(node, CallNode):
            return self._compile_call(node, frame, tail=False, want=want)
        if isinstance(node, LambdaNode):
            return self._compile_lambda_value(node, frame, want)
        if isinstance(node, CaseqNode):
            return self._compile_caseq(node, frame, tail=False, want=want)
        if isinstance(node, ProgbodyNode):
            return self._compile_progbody(node, frame, tail=False, want=want)
        if isinstance(node, CatcherNode):
            return self._compile_catch(node, frame, want)
        if isinstance(node, (GoNode, ReturnNode)):
            self._compile_exit(node, frame)
            return ("imm", NIL)
        raise CodegenError(f"cannot compile {node!r}")

    def _compile_literal(self, node: LiteralNode, want: str) -> Any:
        value = node.value
        if want in (NONE,):
            return ("imm", NIL)
        if is_numeric(want) and isinstance(value, (int, float, complex)) \
                and not isinstance(value, bool):
            return ("imm", value)  # raw immediate
        if isinstance(value, float) or isinstance(value, complex):
            # Pointer-world float constant: box it (constants could be
            # preallocated; we charge one-time boxing per execution, or a
            # pdl slot if authorized).
            return self._box(("imm", value), SWFLO, node)
        return ("imm", value)

    def _value_rep_for(self, node: Node) -> str:
        """The representation this node's compiled value naturally has."""
        isrep = node.isrep
        if isrep in (None, NONE, JUMP, "BIT"):
            return POINTER
        return isrep

    # -- conditionals -------------------------------------------------------------

    def _compile_test(self, node: Node, frame: FrameInfo,
                      false_label: str) -> None:
        """Compile a predicate: fall through when true, jump when false."""
        self._note_source(node)
        self._maybe_cache_specials(node, frame)
        if isinstance(node, LiteralNode):
            if node.value is NIL:
                self.emit("JMP", ("label", false_label))
            return
        if isinstance(node, IfNode):
            # (if (if a b c) ...): decompose into jump structure directly.
            inner_false = _fresh_label("tf")
            join_true = _fresh_label("tt")
            self._compile_test(node.test, frame, inner_false)
            self._compile_test(node.then, frame, false_label)
            self.emit("JMP", ("label", join_true))
            self.emit_label(inner_false)
            self._compile_test(node.else_, frame, false_label)
            self.emit_label(join_true)
            return
        if isinstance(node, PrognNode):
            for form in node.forms[:-1]:
                self._compile_effect(form, frame)
            self._compile_test(node.forms[-1], frame, false_label)
            return
        if isinstance(node, CallNode):
            primitive_name = node.primitive_name()
            if primitive_name is not None:
                if self._compile_primitive_test(node, primitive_name, frame,
                                                false_label):
                    return
        value = self._compile_value(node, frame, POINTER)
        self.emit("JUMPNIL", value, ("label", false_label))

    def _compile_primitive_test(self, node: CallNode, name: Symbol,
                                frame: FrameInfo, false_label: str) -> bool:
        """Compare-and-branch forms for predicate primitives."""
        text = name.name
        if text in _RAW_COMPARES and len(node.args) == 2:
            rep = SWFLO if text.endswith("$f") else SWFIX
            a = self._compile_value(node.args[0], frame, rep)
            b = self._compile_value(node.args[1], frame, rep)
            negations = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
                         "gt": "le", "le": "gt"}
            self.emit("CMPBR", ("imm", negations[_RAW_COMPARES[text]]),
                      a, b, ("label", false_label))
            return True
        if text in ("not", "null") and len(node.args) == 1:
            value = self._compile_value(node.args[0], frame, POINTER)
            self.emit("JUMPNNIL", value, ("label", false_label))
            return True
        if text == "eq" and len(node.args) == 2:
            a = self._compile_value(node.args[0], frame, POINTER)
            b = self._compile_value(node.args[1], frame, POINTER)
            true_label = _fresh_label("eqt")
            self.emit("EQLBR", a, b, ("label", true_label))
            self.emit("JMP", ("label", false_label))
            self.emit_label(true_label)
            return True
        primitive = lookup_primitive(name)
        if primitive is not None and primitive.jump_result:
            # Generic predicate: compute (GENERIC) then test the pointer.
            dst = self.new_tn(KIND_TEMP, POINTER)
            args = [self._compile_value(arg, frame, POINTER)
                    for arg in node.args]
            self.emit("GENERIC", ("name", name), self.tn_ref(dst), *args)
            self.emit("JUMPNIL", self.tn_ref(dst), ("label", false_label))
            return True
        return False

    def _compile_if_value(self, node: IfNode, frame: FrameInfo,
                          want: str) -> Any:
        result_rep = want if want not in (NONE,) else POINTER
        if want == NONE:
            false_label = _fresh_label("else")
            join = _fresh_label("join")
            self._compile_test(node.test, frame, false_label)
            self._compile_effect(node.then, frame)
            self.emit("JMP", ("label", join))
            self.emit_label(false_label)
            self._compile_effect(node.else_, frame)
            self.emit_label(join)
            return ("imm", NIL)
        result = self.new_tn(KIND_TEMP, result_rep, "if-result")
        false_label = _fresh_label("else")
        join = _fresh_label("join")
        self._compile_test(node.test, frame, false_label)
        then_value = self._compile_value(node.then, frame, result_rep)
        self.emit("MOV", self.tn_ref(result), then_value)
        self.emit("JMP", ("label", join))
        self.emit_label(false_label)
        else_value = self._compile_value(node.else_, frame, result_rep)
        self.emit("MOV", self.tn_ref(result), else_value)
        self.emit_label(join)
        return self.tn_ref(result)

    # -- caseq / progbody / catch ----------------------------------------------------

    def _compile_caseq(self, node: CaseqNode, frame: FrameInfo, tail: bool,
                       want: str = POINTER) -> Any:
        key = self._compile_value(node.key, frame, POINTER)
        key_tn = self.new_tn(KIND_TEMP, POINTER, "caseq-key")
        self.emit("MOV", self.tn_ref(key_tn), key)
        clause_labels = [_fresh_label("case") for _ in node.clauses]
        default_label = _fresh_label("casedef")
        join = _fresh_label("casejoin")
        for (keys, _), label in zip(node.clauses, clause_labels):
            for constant in keys:
                self.emit("EQLBR", self.tn_ref(key_tn), ("imm", constant),
                          ("label", label))
        self.emit("JMP", ("label", default_label))
        result = None if tail else self.new_tn(
            KIND_TEMP, want if want != NONE else POINTER, "caseq-result")
        bodies = [body for _, body in node.clauses] + [node.default]
        labels = clause_labels + [default_label]
        for body, label in zip(bodies, labels):
            self.emit_label(label)
            if tail:
                self._compile_tail(body, frame)
            else:
                value = self._compile_value(
                    body, frame, want if want != NONE else POINTER)
                if want != NONE:
                    self.emit("MOV", self.tn_ref(result), value)
                self.emit("JMP", ("label", join))
        if not tail:
            self.emit_label(join)
            return self.tn_ref(result) if want != NONE else ("imm", NIL)
        return None

    def _compile_progbody(self, node: ProgbodyNode, frame: FrameInfo,
                          tail: bool, want: str = POINTER) -> Any:
        tag_labels: Dict[Symbol, str] = {}
        for item in node.items:
            if isinstance(item, TagMarker) and item.name not in tag_labels:
                tag_labels[item.name] = _fresh_label(f"tag_{item.name.name}")
        exit_label = _fresh_label("pbexit")
        result = self.new_tn(KIND_TEMP, POINTER, "progbody-result")
        # progbody control-transfer state pushed for nested compilation
        state = (node, tag_labels, exit_label, result)
        self._progbody_stack.append(state)
        for item in node.items:
            if isinstance(item, TagMarker):
                self.emit_label(tag_labels[item.name])
            else:
                self._compile_effect(item, frame)
        self.emit("MOV", self.tn_ref(result), ("imm", NIL))
        self.emit_label(exit_label)
        self._progbody_stack.pop()
        if tail:
            self._emit_return(self.tn_ref(result), frame)
            return None
        return self._coerce(self.tn_ref(result), POINTER,
                            want if want != NONE else POINTER, node)

    def _compile_exit(self, node: Node, frame: FrameInfo) -> None:
        for state in reversed(self._progbody_stack):
            target, tag_labels, exit_label, result = state
            if isinstance(node, GoNode) and node.target is target:
                label = tag_labels.get(node.tag)
                if label is None:
                    raise CodegenError(f"go to unknown tag {node.tag}")
                self.emit("JMP", ("label", label))
                return
            if isinstance(node, ReturnNode) and node.target is target:
                value = self._compile_value(node.value, frame, POINTER)
                self.emit("MOV", self.tn_ref(result), value)
                self.emit("JMP", ("label", exit_label))
                return
        raise CodegenError(f"{node!r} exits a progbody outside this frame")

    def _compile_catch(self, node: CatcherNode, frame: FrameInfo,
                       want: str) -> Any:
        tag = self._compile_value(node.tag, frame, POINTER)
        catch_label = _fresh_label("catch")
        join = _fresh_label("catchjoin")
        result = self.new_tn(KIND_TEMP, POINTER, "catch-result")
        result.crosses_call = True
        self.emit("CATCHPUSH", ("label", catch_label), tag)
        body = self._compile_value(node.body, frame, POINTER)
        self.emit("MOV", self.tn_ref(result), body)
        self.emit("CATCHPOP")
        self.emit("JMP", ("label", join))
        self.emit_label(catch_label)
        self.emit("POP", self.tn_ref(result))
        self.emit_label(join)
        return self._coerce(self.tn_ref(result), POINTER,
                            want if want != NONE else POINTER, node)

    # -- lambdas as values -------------------------------------------------------------

    def _compile_lambda_value(self, node: LambdaNode, frame: FrameInfo,
                              want: str) -> Any:
        free = sorted(free_variables(node), key=lambda v: v.uid)
        strategy = node.strategy
        if strategy == STRATEGY_FAST_CALL and free:
            strategy = STRATEGY_FULL_CLOSURE  # our fast linkage has no
            # static link; capturing fast lambdas fall back to closures
        if strategy == STRATEGY_FAST_CALL:
            label = _fresh_label("fast")
            self.sections.append(_Section("fast", label, node, frame))
            info = JumpLambdaInfo(label, [], node)
            return ("fastfn", info)  # only consumed by known call sites
        # Full closure.
        captures: List[Any] = []
        env_map: Dict[Variable, int] = {}
        for index, variable in enumerate(free):
            env_map[variable] = index
            access = frame.variables.get(variable)
            if access is None:
                raise CodegenError(
                    f"free variable {variable!r} not reachable for capture")
            if access[0] == "cell":
                captures.append(access[1])
            elif access[0] == "env":
                tmp = self.new_tn(KIND_TEMP, POINTER)
                self.emit("ENVREF", self.tn_ref(tmp), ("imm", access[1]))
                captures.append(self.tn_ref(tmp))
            else:
                captures.append(access)
        entry = _fresh_label("closure")
        closure_frame = FrameInfo(lambda_node=node,
                                  cache_plan=self.plans.get(node))
        closure_frame.env_map = env_map
        section = _Section("closure", entry, node, closure_frame)
        self.sections.append(section)
        dst = self.new_tn(KIND_TEMP, POINTER, "closure")
        self.emit("CLOSURE", self.tn_ref(dst), ("label", entry), *captures,
                  comment=f"close over {[str(v.name) for v in free]}")
        return self._coerce(self.tn_ref(dst), POINTER, want, node)

    def _emit_closure_body(self, section: _Section) -> None:
        node = section.lambda_node
        frame = self._compile_function_entry(node, fast=False,
                                             entry_label=section.label)
        # Captured variables come from the environment; mutable ones are
        # cells in the env.
        for variable, index in section.frame.env_map.items():
            if variable.heap_allocated:
                frame.variables[variable] = ("cell", ("env-cell", index))
            else:
                frame.variables[variable] = ("env", index)
        frame.env_map = section.frame.env_map
        self._compile_tail(node.body, frame)

    def _emit_fast_function(self, section: _Section) -> None:
        node = section.lambda_node
        self.emit_label(section.label)
        # Fast linkage: no ARGCHECK/ARGDISPATCH ("can avoid error checks
        # such as on the number of arguments passed").
        frame = FrameInfo(lambda_node=node,
                          cache_plan=self.plans.get(node))
        self._emit_alloctemps()
        self._bind_frame_parameters(node, frame)
        self._compile_tail(node.body, frame)

    def _emit_jump_body(self, section: _Section) -> None:
        pass  # jump lambdas are emitted in place; nothing deferred

    # -- calls ----------------------------------------------------------------------

    def _compile_call(self, node: CallNode, frame: FrameInfo, tail: bool,
                      want: str = POINTER) -> Any:
        fn = node.fn
        # Case 1: direct lambda call (let) -- compile in-line.
        if isinstance(fn, LambdaNode):
            return self._compile_let(node, fn, frame, tail, want)
        # Case 2: known primitive.
        if isinstance(fn, FunctionRefNode):
            primitive = lookup_primitive(fn.name)
            if primitive is not None:
                result = self._compile_primitive_call(
                    node, fn.name, primitive, frame,
                    POINTER if tail else want)
                if tail:
                    self._emit_return(result, frame)
                    return None
                return result
            if fn.name is sym("apply"):
                return self._compile_apply(node, frame, tail, want)
            if fn.name in (sym("lock"), sym("unlock")) \
                    and len(node.args) == 1:
                # Synchronization instructions (Section 3), exposed to the
                # Lisp user as (lock key) / (unlock key).
                value = self._compile_value(node.args[0], frame, POINTER)
                self.emit(fn.name.name.upper(), value,
                          comment="synchronization")
                result = ("imm", NIL)
                if tail:
                    self._emit_return(result, frame)
                    return None
                return result
            if fn.name is sym("throw") and len(node.args) == 2:
                args = [self._compile_value(arg, frame, POINTER)
                        for arg in node.args]
                dst = self.new_tn(KIND_TEMP, POINTER)
                self.emit("GENERIC", ("name", fn.name), self.tn_ref(dst),
                          *args, comment="non-local exit")
                if tail:
                    self._emit_return(self.tn_ref(dst), frame)
                    return None
                return self.tn_ref(dst)
            return self._compile_global_call(node, fn.name, frame, tail, want)
        # Case 3: call through a variable bound to a known lambda?
        if isinstance(fn, VarRefNode):
            target = self._known_lambda_for(fn.variable)
            if target is not None:
                return self._compile_known_lambda_call(node, target, frame,
                                                       tail, want)
        # General case: computed function value.
        fn_value = self._compile_value(fn, frame, POINTER)
        fn_tn = self.new_tn(KIND_TEMP, POINTER, "fn")
        self.emit("MOV", self.tn_ref(fn_tn), fn_value)
        for arg in node.args:
            value = self._compile_value(arg, frame, POINTER)
            self.emit("PUSH", value)
        nargs = ("imm", len(node.args))
        if tail and frame.spec_depth == 0 and self.options.enable_tail_calls:
            self.emit("TAILCALLF", self.tn_ref(fn_tn), nargs)
            return None
        self.emit("CALLF", self.tn_ref(fn_tn), nargs)
        dst = self.new_tn(KIND_TEMP, POINTER, "call-result")
        self.emit("POP", self.tn_ref(dst))
        if tail:
            self._emit_return(self.tn_ref(dst), frame)
            return None
        return self._coerce(self.tn_ref(dst), POINTER,
                            want if want != NONE else POINTER, node)

    def _known_lambda_for(self, variable: Variable):
        """If this variable was let-bound to a jump/fast lambda, return the
        lambda node."""
        return self._known_lambda_map.get(variable)

    def _compile_let(self, call: CallNode, fn: LambdaNode, frame: FrameInfo,
                     tail: bool, want: str) -> Any:
        if not fn.is_simple() or len(call.args) != len(fn.required):
            # Unusual arity (optionals in a direct call): fall back to a
            # closure call.
            closure = self._compile_lambda_closure_fallback(fn, frame)
            for arg in call.args:
                self.emit("PUSH", self._compile_value(arg, frame, POINTER))
            self.emit("CALLF", closure, ("imm", len(call.args)))
            dst = self.new_tn(KIND_TEMP, POINTER)
            self.emit("POP", self.tn_ref(dst))
            if tail:
                self._emit_return(self.tn_ref(dst), frame)
                return None
            return self._coerce(self.tn_ref(dst), POINTER,
                                want if want != NONE else POINTER, call)
        saved_spec_depth = frame.spec_depth
        bound_specials = 0
        for variable, arg in zip(fn.required, call.args):
            if variable.special:
                value = self._compile_value(arg, frame, POINTER)
                self.emit("SPECBIND", ("name", variable.name), value,
                          comment=f"deep-bind special {variable.name}")
                frame.spec_depth += 1
                bound_specials += 1
                continue
            if isinstance(arg, LambdaNode) and arg.strategy in (
                    STRATEGY_JUMP, STRATEGY_FAST_CALL) \
                    and self.options.enable_closure_analysis \
                    and not variable.is_assigned():
                # Known-function binding: no closure object materialized.
                self._known_lambda_map[variable] = arg
                continue
            if variable.heap_allocated:
                value = self._compile_value(arg, frame, POINTER)
                cell_tn = self.new_tn(KIND_VAR, POINTER,
                                      f"cell:{variable.name}")
                cell_tn.crosses_call = True
                self.emit("MKCELL", self.tn_ref(cell_tn), value)
                frame.variables[variable] = ("cell", self.tn_ref(cell_tn))
                continue
            rep = variable.rep or POINTER
            value = self._compile_value(arg, frame, rep)
            var_tn = self.new_tn(KIND_VAR, rep, str(variable.name))
            variable.tn = var_tn
            self.emit("MOV", self.tn_ref(var_tn), value,
                      comment=f"bind {variable.name}")
            frame.variables[variable] = ("tn", var_tn)
        if bound_specials and tail:
            # Cannot tail-jump past dynamic bindings: compile the body for
            # value, unbind, then return.
            value = self._compile_value(fn.body, frame,
                                        POINTER)
            self.emit("SPECUNBIND", ("imm", bound_specials))
            frame.spec_depth = saved_spec_depth
            self.emit("RET", value) if frame.spec_depth == 0 else \
                self._emit_return(value, frame)
            return None
        if tail:
            self._compile_tail(fn.body, frame)
            return None
        result = self._compile_value(fn.body, frame,
                                     want if want != NONE else POINTER)
        if bound_specials:
            self.emit("SPECUNBIND", ("imm", bound_specials))
            frame.spec_depth = saved_spec_depth
        return result

    def _compile_lambda_closure_fallback(self, fn: LambdaNode,
                                         frame: FrameInfo) -> Any:
        saved = fn.strategy
        fn.strategy = STRATEGY_FULL_CLOSURE
        try:
            return self._compile_lambda_value(fn, frame, POINTER)
        finally:
            fn.strategy = saved

    def _compile_known_lambda_call(self, call: CallNode, target: LambdaNode,
                                   frame: FrameInfo, tail: bool,
                                   want: str) -> Any:
        """Call to a variable bound to a lambda with known call sites:
        compile as an in-line expansion (parameter-passing goto).

        Every call site expands the body -- for jump-strategy thunks these
        are "simple jump instructions" in spirit; because each call site is
        distinct and the body is typically tiny post-optimization, in-line
        expansion *is* the parameter-passing goto."""
        if not target.is_simple() or len(call.args) != len(target.required):
            raise CodegenError("known-lambda call arity mismatch")
        inline = CallNode(target if not target.parent else
                          _copy_lambda(target), list(call.args))
        # Re-annotate the copied subtree minimally.
        fn = inline.fn
        assert isinstance(fn, LambdaNode)
        fn.strategy = STRATEGY_JUMP
        return self._compile_let(inline, fn, frame, tail, want)

    def _compile_apply(self, node: CallNode, frame: FrameInfo, tail: bool,
                       want: str) -> Any:
        if len(node.args) < 2:
            raise CodegenError("apply needs a function and a list")
        fn_value = self._compile_value(node.args[0], frame, POINTER)
        fn_tn = self.new_tn(KIND_TEMP, POINTER, "apply-fn")
        self.emit("MOV", self.tn_ref(fn_tn), fn_value)
        for arg in node.args[1:]:
            self.emit("PUSH", self._compile_value(arg, frame, POINTER))
        self.emit("APPLYF", self.tn_ref(fn_tn), ("imm", len(node.args) - 1))
        dst = self.new_tn(KIND_TEMP, POINTER)
        self.emit("POP", self.tn_ref(dst))
        if tail:
            self._emit_return(self.tn_ref(dst), frame)
            return None
        return self._coerce(self.tn_ref(dst), POINTER,
                            want if want != NONE else POINTER, node)

    def _compile_global_call(self, node: CallNode, name: Symbol,
                             frame: FrameInfo, tail: bool, want: str) -> Any:
        for arg in node.args:
            value = self._compile_value(arg, frame, POINTER)
            self.emit("PUSH", value)
        nargs = ("imm", len(node.args))
        if tail and frame.spec_depth == 0 and self.options.enable_tail_calls:
            self.emit("TAILCALL", ("global", name), nargs,
                      comment=f"tail call {name} (parameter-passing goto)")
            return None
        self.emit("CALL", ("global", name), nargs, comment=f"call {name}")
        dst = self.new_tn(KIND_TEMP, POINTER, "call-result")
        self.emit("POP", self.tn_ref(dst))
        if tail:
            self._emit_return(self.tn_ref(dst), frame)
            return None
        return self._coerce(self.tn_ref(dst), POINTER,
                            want if want != NONE else POINTER, node)

    # -- primitive calls ----------------------------------------------------------------

    def _compile_primitive_call(self, node: CallNode, name: Symbol,
                                primitive: Primitive, frame: FrameInfo,
                                want: str) -> Any:
        text = name.name
        # In-line raw arithmetic.
        if text in _RAW_BINOPS and len(node.args) == 2 \
                and self.options.enable_representation_analysis:
            rep = primitive.arg_rep or SWFIX
            a = self._compile_value(node.args[0], frame, rep)
            b = self._compile_value(node.args[1], frame, rep)
            dst = self.new_tn(KIND_TEMP, rep)
            dst.prefer_rt = self.target.has_rt_constraint
            self.emit(_RAW_BINOPS[text], self.tn_ref(dst), a, b,
                      comment=f"({text} ...)")
            result_rep = primitive.result_rep
            return self._coerce(self.tn_ref(dst), result_rep,
                                want if want != NONE else result_rep, node)
        if text in _RAW_BINOPS and len(node.args) == 1 and text in ("-$f", "-&") \
                and self.options.enable_representation_analysis:
            rep = SWFLO if text == "-$f" else SWFIX
            a = self._compile_value(node.args[0], frame, rep)
            dst = self.new_tn(KIND_TEMP, rep)
            self.emit("FNEG" if rep == SWFLO else "NEG", self.tn_ref(dst), a)
            return self._coerce(self.tn_ref(dst), rep,
                                want if want != NONE else rep, node)
        if text in _RAW_UNOPS and len(node.args) == 1 \
                and self.options.enable_representation_analysis:
            a = self._compile_value(node.args[0], frame, SWFLO
                                    if text not in ("fix",) else SWFLO)
            dst = self.new_tn(KIND_TEMP, primitive.result_rep)
            self.emit(_RAW_UNOPS[text], self.tn_ref(dst), a,
                      comment=f"({text} ...)")
            return self._coerce(self.tn_ref(dst), primitive.result_rep,
                                want if want != NONE else primitive.result_rep,
                                node)
        # N-ary raw float ops that survived without reassociation.
        if text in _RAW_BINOPS and len(node.args) > 2 \
                and self.options.enable_representation_analysis:
            rep = primitive.arg_rep or SWFIX
            acc = self._compile_value(node.args[0], frame, rep)
            for arg in node.args[1:]:
                value = self._compile_value(arg, frame, rep)
                dst = self.new_tn(KIND_TEMP, rep)
                dst.prefer_rt = self.target.has_rt_constraint
                self.emit(_RAW_BINOPS[text], self.tn_ref(dst), acc, value)
                acc = self.tn_ref(dst)
            return self._coerce(acc, rep, want if want != NONE else rep, node)
        # Vector hardware instructions, in-line.
        if text in _VECTOR_OPS and len(node.args) == _VECTOR_OPS[text][1] \
                and self.options.enable_representation_analysis:
            opcode, _, result_rep = _VECTOR_OPS[text]
            args = []
            for index, arg in enumerate(node.args):
                # VSCALE's first operand is the raw scale factor.
                rep = SWFLO if (text == "vscale$f" and index == 0) \
                    else POINTER
                args.append(self._compile_value(arg, frame, rep))
            dst = self.new_tn(KIND_TEMP, result_rep)
            self.emit(opcode, self.tn_ref(dst), *args,
                      comment=f"vector op {text}")
            return self._coerce(self.tn_ref(dst), result_rep,
                                want if want != NONE else result_rep, node)
        # Generic (pointer-world) operation, out of line.
        args = [self._compile_value(arg, frame, POINTER)
                for arg in node.args]
        dst = self.new_tn(KIND_TEMP, POINTER)
        self.emit("GENERIC", ("name", name), self.tn_ref(dst), *args,
                  comment=f"generic {name}")
        return self._coerce(self.tn_ref(dst), POINTER,
                            want if want != NONE else POINTER, node)

    # -- assembly ---------------------------------------------------------------------

    def _assemble(self) -> CodeObject:
        self._extend_lifetimes_over_loops()
        self._mark_call_crossings()
        import dataclasses

        pack_options = dataclasses.replace(
            self.options,
            registers_available=min(self.options.registers_available,
                                    self.target.registers))
        # Time the TNBIND/PACK step separately so the diagnostics layer can
        # report it as its own Table 1 phase (it runs inside codegen).
        pack_start = time.perf_counter()
        self.tnbind_started = pack_start
        packing = pack_tns(self.tns, pack_options)
        self.tnbind_seconds = time.perf_counter() - pack_start
        self.tns_packed = len(self.tns)
        # Exposed for the phase-boundary verifier (repro.verify.alloc):
        # the packing result and the *effective* options it ran under
        # (registers_available is capped to the target's file size here).
        self.packing = packing
        self.pack_options = pack_options
        resolved = self._resolve_operands()
        legalized = self._legalize_rt(resolved)
        instructions: List[Instruction] = []
        labels: Dict[str, int] = {}
        alloc_indices: List[int] = []
        for instruction in legalized:
            if instruction.opcode == "LABEL":
                labels[instruction.operands[0][1]] = len(instructions)
                continue
            if instruction.opcode == "ALLOCTEMPS":
                alloc_indices.append(len(instructions))
            instructions.append(instruction)
        for index in alloc_indices:
            instructions[index] = Instruction(
                "ALLOCTEMPS", (("imm", packing.temp_slots_used),),
                instructions[index].comment,
                line=instructions[index].line)
        code = CodeObject(
            name=self.name,
            instructions=instructions,
            labels=labels,
            n_temps=packing.temp_slots_used,
            arity_min=self.root.min_args(),
            arity_max=self.root.max_args(),
            target=self.target.name,
            source_file=self.source_file,
        )
        code.rebuild_line_map()
        code.moves_inserted = self.moves_inserted  # type: ignore[attr-defined]
        code.registers_used = packing.registers_used  # type: ignore[attr-defined]
        return code

    def _extend_lifetimes_over_loops(self) -> None:
        """A backward branch makes every value live anywhere in the loop
        body live across the whole loop: extend TN intervals over each
        [target, branch] span of backward jumps (linear intervals alone
        would let the packer reuse a register that the next iteration still
        reads)."""
        label_ticks: Dict[str, int] = {}
        for tick, instruction in enumerate(self.vcode):
            if instruction.opcode == "LABEL":
                label_ticks[instruction.operands[0][1]] = tick
        spans: List[Tuple[int, int]] = []
        for tick, instruction in enumerate(self.vcode):
            if instruction.opcode == "LABEL":
                continue
            for operand in instruction.operands:
                if isinstance(operand, tuple) and operand \
                        and operand[0] == "label":
                    target = label_ticks.get(operand[1])
                    if target is not None and target < tick:
                        spans.append((target, tick))
        if not spans:
            return
        changed = True
        while changed:
            changed = False
            for start, end in spans:
                for tn in self.tns:
                    if tn.first is None:
                        continue
                    # Live anywhere inside the span and born before its end:
                    if tn.first <= end and tn.last >= start and tn.last < end:
                        tn.last = end
                        changed = True

    def _mark_call_crossings(self) -> None:
        for tn in self.tns:
            if tn.first is None:
                continue
            for tick in self.call_ticks:
                if tn.first < tick < tn.last:
                    tn.crosses_call = True
                    break

    def _resolve_operands(self) -> List[Instruction]:
        resolved: List[Instruction] = []
        for instruction in self.vcode:
            operands = []
            for operand in instruction.operands:
                operands.append(self._resolve_operand(operand))
            resolved.append(Instruction(instruction.opcode, tuple(operands),
                                        instruction.comment,
                                        line=instruction.line))
        return resolved

    def _resolve_operand(self, operand: Any) -> Any:
        if isinstance(operand, tuple) and operand:
            if operand[0] == "tn":
                tn = operand[1]
                if tn.location is None:
                    # Dead TN (value never used); give it a scratch register.
                    return ("reg", 0)
                if tn.location.kind == "reg":
                    return ("reg", tn.location.index)
                return ("temp", tn.location.index)
            if operand[0] == "pdlslot":
                tn = operand[1]
                assert tn.location is not None and \
                    tn.location.kind == "temp-slot"
                return ("temp", tn.location.index)
            if operand[0] == "env-cell":
                return operand  # resolved at cell access level
        return operand

    def _legalize_rt(self, instructions: List[Instruction]
                     ) -> List[Instruction]:
        """Enforce the 2 1/2-address constraint: for OP dst,src1,src2 one of
        {dst==src1, dst is RT, src1 is RT} must hold; otherwise insert a MOV
        (these are the MOVs good RT allocation avoids -- E4's metric).

        Targets with true 3-address arithmetic (the VAX model) skip this
        entirely."""
        if not self.target.has_rt_constraint:
            return instructions
        result: List[Instruction] = []
        for instruction in instructions:
            if instruction.opcode in RAW_BINARY_OPS \
                    and len(instruction.operands) == 3:
                dst, src1, src2 = instruction.operands
                if dst == src1 or _is_rt(dst) or _is_rt(src1):
                    result.append(instruction)
                    continue
                if dst == src2:
                    # MOV would clobber src2; stage through RTA.
                    result.append(Instruction("MOV", (("reg", RTA), src1),
                                              line=instruction.line))
                    result.append(Instruction(
                        instruction.opcode,
                        (("reg", RTA), ("reg", RTA), src2),
                        instruction.comment, line=instruction.line))
                    result.append(Instruction("MOV", (dst, ("reg", RTA)),
                                              line=instruction.line))
                    self.moves_inserted += 2
                    continue
                result.append(Instruction("MOV", (dst, src1),
                                          line=instruction.line))
                result.append(Instruction(
                    instruction.opcode, (dst, dst, src2),
                    instruction.comment, line=instruction.line))
                self.moves_inserted += 1
                continue
            result.append(instruction)
        return result


def _is_rt(operand: Any) -> bool:
    return isinstance(operand, tuple) and operand[0] == "reg" \
        and operand[1] in (RTA, RTB)


def _copy_lambda(node: LambdaNode) -> LambdaNode:
    from ..ir.nodes import copy_tree

    clone = copy_tree(node)
    assert isinstance(clone, LambdaNode)
    return clone

