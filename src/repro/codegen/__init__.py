"""Code generation: annotated tree -> parenthesized assembly (CodeObject)."""

from .generator import FrameInfo, FunctionCodegen
from .peephole import PeepholeStats, optimize_code

__all__ = ["FrameInfo", "FunctionCodegen", "PeepholeStats", "optimize_code"]
