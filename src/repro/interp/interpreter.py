"""The reference interpreter: executes internal trees directly.

This is the library's semantics oracle.  The compiler test-suite checks, for
many programs, that

    interpret(program) == simulate(compile(program))

and the optimizer's property tests check that every transformation preserves
interpreted behaviour.

The interpreter implements the dialect's defining semantic properties:

* **tail-recursive semantics** -- "recursive procedures of a certain form
  have iterative behavior ... cannot produce stack overflow no matter how
  large n is" (Section 2).  The main eval loop iterates instead of recursing
  for every tail position (if arms, last progn form, call bodies).
* **lexical closures** with indefinite extent,
* **special variables** via deep binding,
* **optional parameters with computed defaults** that may refer to earlier
  parameters,
* **catch/throw** non-local exits, and ``go``/``return`` within progbody.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..datum import NIL, T, Cons, from_list, to_list
from ..datum.symbols import Symbol, sym
from ..errors import (
    LispError,
    UnboundVariableError,
    WrongNumberOfArgumentsError,
)
from ..ir.nodes import (
    CallNode,
    CaseqNode,
    CatcherNode,
    FunctionRefNode,
    GoNode,
    IfNode,
    LambdaNode,
    LiteralNode,
    Node,
    PrognNode,
    ProgbodyNode,
    ReturnNode,
    SetqNode,
    TagMarker,
    Variable,
    VarRefNode,
)
from ..ir.convert import Converter
from ..primitives import Primitive, lookup_primitive
from ..reader import read, read_all
from .environment import DeepBindingStack, LexicalEnvironment
from ..datum.numbers import lisp_eql


class LispClosure:
    """A function value: lambda-expression plus captured environment."""

    __slots__ = ("lambda_node", "env", "name")

    def __init__(self, lambda_node: LambdaNode, env: LexicalEnvironment,
                 name: Optional[str] = None):
        self.lambda_node = lambda_node
        self.env = env
        self.name = name or lambda_node.name_hint

    def __repr__(self) -> str:
        return f"#<closure {self.name or 'anonymous'}>"


class _ThrowSignal(LispError):
    """Internal unwinding signal; escaping uncaught is a Lisp error."""

    def __init__(self, tag: Any, value: Any):
        super().__init__(f"uncaught throw to tag {tag!r}")
        self.tag = tag
        self.value = value


class _GoSignal(LispError):
    def __init__(self, target: ProgbodyNode, tag: Symbol):
        super().__init__(f"go escaped its progbody: tag {tag}")
        self.target = target
        self.tag = tag


class _ReturnSignal(LispError):
    def __init__(self, target: ProgbodyNode, value: Any):
        super().__init__("return escaped its progbody")
        self.target = target
        self.value = value


class _TailCall:
    """Internal marker: the body of this closure should continue the loop."""

    __slots__ = ("node", "env")

    def __init__(self, node: Node, env: LexicalEnvironment):
        self.node = node
        self.env = env


class Interpreter:
    """Evaluates internal trees; owns global functions and special values."""

    def __init__(self) -> None:
        self.converter = Converter()
        self.global_functions: Dict[Symbol, Any] = {}
        self.specials = DeepBindingStack()
        self.call_count = 0
        self.max_python_depth = 0

    # -- program definition --------------------------------------------------

    def define_function(self, name: Symbol, closure: Any) -> None:
        self.global_functions[name] = closure

    def eval_source(self, text: str) -> Any:
        """Evaluate each top-level form in *text*; return the last value."""
        result: Any = NIL
        for form in read_all(text):
            result = self.eval_form(form)
        return result

    def eval_form(self, form: Any) -> Any:
        if isinstance(form, Cons) and form.car is sym("defun"):
            name, node = self.converter.convert_defun(form)
            closure = LispClosure(node, LexicalEnvironment(), name=name.name)
            self.define_function(name, closure)
            return name
        if isinstance(form, Cons) and form.car in (sym("defvar"),
                                                   sym("defparameter")):
            parts = to_list(form.cdr)
            name = parts[0]
            self.converter.proclaimed_specials.add(name)
            if len(parts) > 1:
                value = self.eval_node(self.converter.convert(parts[1]))
                self.specials.set_global(name, value)
            elif name not in self.specials.globals:
                self.specials.set_global(name, NIL)
            return name
        node = self.converter.convert(form)
        return self.eval_node(node)

    # -- evaluation ------------------------------------------------------------

    def eval_node(self, node: Node,
                  env: Optional[LexicalEnvironment] = None) -> Any:
        if env is None:
            env = LexicalEnvironment()
        return self._eval(node, env)

    def _eval(self, node: Node, env: LexicalEnvironment) -> Any:
        """Iterative evaluator; loops on tail positions."""
        while True:
            if isinstance(node, LiteralNode):
                return node.value
            if isinstance(node, VarRefNode):
                variable = node.variable
                if variable.special:
                    return self.specials.lookup(variable.name)
                return env.lookup(variable)
            if isinstance(node, FunctionRefNode):
                return self._function_value(node.name)
            if isinstance(node, IfNode):
                test = self._eval(node.test, env)
                node = node.then if test is not NIL else node.else_
                continue
            if isinstance(node, PrognNode):
                for form in node.forms[:-1]:
                    self._eval(form, env)
                node = node.forms[-1]
                continue
            if isinstance(node, SetqNode):
                value = self._eval(node.value, env)
                if node.variable.special:
                    return self.specials.assign(node.variable.name, value)
                return env.assign(node.variable, value)
            if isinstance(node, LambdaNode):
                return LispClosure(node, env)
            if isinstance(node, CallNode):
                outcome = self._eval_call(node, env)
                if isinstance(outcome, _TailCall):
                    node, env = outcome.node, outcome.env
                    continue
                return outcome
            if isinstance(node, ProgbodyNode):
                return self._eval_progbody(node, env)
            if isinstance(node, GoNode):
                raise _GoSignal(node.target, node.tag)
            if isinstance(node, ReturnNode):
                value = self._eval(node.value, env)
                raise _ReturnSignal(node.target, value)
            if isinstance(node, CaseqNode):
                key = self._eval(node.key, env)
                for keys, body in node.clauses:
                    if any(lisp_eql(key, candidate) for candidate in keys):
                        node = body
                        break
                else:
                    node = node.default
                continue
            if isinstance(node, CatcherNode):
                tag = self._eval(node.tag, env)
                try:
                    return self._eval(node.body, env)
                except _ThrowSignal as signal:
                    if lisp_eql(signal.tag, tag):
                        return signal.value
                    raise
            raise LispError(f"cannot evaluate node {node!r}")

    def _function_value(self, name: Symbol) -> Any:
        fn = self.global_functions.get(name)
        if fn is not None:
            return fn
        primitive = lookup_primitive(name)
        if primitive is not None:
            return primitive
        raise UnboundVariableError(f"undefined function {name}")

    def _eval_call(self, node: CallNode, env: LexicalEnvironment) -> Any:
        fn = self._callee(node, env)
        args = [self._eval(arg, env) for arg in node.args]
        return self._apply(fn, args, tail=True)

    def _callee(self, node: CallNode, env: LexicalEnvironment) -> Any:
        fn_node = node.fn
        if isinstance(fn_node, FunctionRefNode):
            name = fn_node.name
            # apply and throw need interpreter-level support.
            if name is sym("apply"):
                return _APPLY
            if name is sym("throw"):
                return _THROW
            if name is sym("funcall"):
                return _FUNCALL
            return self._function_value(name)
        if isinstance(fn_node, LambdaNode):
            return LispClosure(fn_node, env)
        return self._eval(fn_node, env)

    def apply_function(self, fn: Any, args: Sequence[Any]) -> Any:
        """Public entry: call a Lisp function value with Python-level args."""
        outcome = self._apply(fn, list(args), tail=False)
        assert not isinstance(outcome, _TailCall)
        return outcome

    def _apply(self, fn: Any, args: List[Any], tail: bool) -> Any:
        self.call_count += 1
        if fn is _APPLY:
            if len(args) < 2:
                raise WrongNumberOfArgumentsError("apply: needs >= 2 arguments")
            spread = args[1:-1] + to_list(args[-1])
            return self._apply(args[0], spread, tail=tail)
        if fn is _FUNCALL:
            if not args:
                raise WrongNumberOfArgumentsError("funcall: needs a function")
            return self._apply(args[0], args[1:], tail=tail)
        if fn is _THROW:
            if len(args) != 2:
                raise WrongNumberOfArgumentsError("throw: needs tag and value")
            raise _ThrowSignal(args[0], args[1])
        if isinstance(fn, Primitive):
            return fn.apply(args)
        if isinstance(fn, LispClosure):
            frame, specials_depth = self._bind_parameters(fn, args)
            if specials_depth is None and tail:
                # No special bindings to unwind: continue iteratively.
                return _TailCall(fn.lambda_node.body, frame)
            try:
                return self._eval(fn.lambda_node.body, frame)
            finally:
                if specials_depth is not None:
                    self.specials.pop_to(specials_depth)
        if callable(fn):  # host function injected by tests
            return fn(*args)
        raise LispError(f"not a function: {fn!r}")

    def _bind_parameters(self, closure: LispClosure, args: List[Any]
                         ) -> Tuple[LexicalEnvironment, Optional[int]]:
        node = closure.lambda_node
        frame = LexicalEnvironment(closure.env)
        specials_depth: Optional[int] = None

        def bind(variable: Variable, value: Any) -> None:
            nonlocal specials_depth
            if variable.special:
                if specials_depth is None:
                    specials_depth = self.specials.depth()
                self.specials.push(variable.name, value)
            else:
                frame.bind(variable, value)

        min_args = node.min_args()
        max_args = node.max_args()
        if len(args) < min_args or (max_args is not None and len(args) > max_args):
            raise WrongNumberOfArgumentsError(
                f"{closure.name or 'anonymous function'}: got {len(args)}"
                f" argument(s), expected {min_args}"
                + ("" if max_args == min_args else
                   f"..{'*' if max_args is None else max_args}"))

        index = 0
        for variable in node.required:
            bind(variable, args[index])
            index += 1
        for opt in node.optionals:
            if index < len(args):
                bind(opt.variable, args[index])
                index += 1
            else:
                # Default computed in the environment built so far; may use
                # earlier parameters (Section 2's generalized defaulting).
                bind(opt.variable, self._eval(opt.default, frame))
        if node.rest is not None:
            bind(node.rest, from_list(args[index:]))
        return frame, specials_depth

    def _eval_progbody(self, node: ProgbodyNode, env: LexicalEnvironment) -> Any:
        index = 0
        items = node.items
        while index < len(items):
            item = items[index]
            if isinstance(item, TagMarker):
                index += 1
                continue
            try:
                self._eval(item, env)
            except _GoSignal as signal:
                if signal.target is not node:
                    raise
                for i, candidate in enumerate(items):
                    if (isinstance(candidate, TagMarker)
                            and candidate.name is signal.tag):
                        index = i + 1
                        break
                else:
                    raise LispError(f"go: no tag {signal.tag} in progbody")
                continue
            except _ReturnSignal as signal:
                if signal.target is not node:
                    raise
                return signal.value
            index += 1
        return NIL


class _Marker:
    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover
        return f"#<{self.name}>"


_APPLY = _Marker("apply")
_FUNCALL = _Marker("funcall")
_THROW = _Marker("throw")


def evaluate(text: str) -> Any:
    """One-shot convenience: evaluate source text in a fresh interpreter."""
    return Interpreter().eval_source(text)
