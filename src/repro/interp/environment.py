"""Run-time environments for the reference interpreter.

Lexical environments are chains of frames mapping :class:`Variable` objects
to mutable cells.  Because conversion alpha-renames (each binding construct
allocates a fresh Variable), a flat per-frame dict suffices and shadowing
needs no special handling.

Special (dynamically scoped) variables use the *deep binding* technique the
paper's implementation uses (Section 4.4 of the paper, "Special variable
lookups"): binding pushes (name, cell) onto a binding stack; lookup searches
the stack linearly, falling back to a global value table.  The interpreter
counts lookups so the special-variable caching experiment (P4) can compare
against the compiled scheme.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..datum.symbols import Symbol
from ..errors import UnboundVariableError
from ..ir.nodes import Variable


class Cell:
    """A mutable binding cell (so closures share assignments)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


class LexicalEnvironment:
    __slots__ = ("bindings", "parent")

    def __init__(self, parent: Optional["LexicalEnvironment"] = None):
        self.bindings: Dict[Variable, Cell] = {}
        self.parent = parent

    def bind(self, variable: Variable, value: Any) -> Cell:
        cell = Cell(value)
        self.bindings[variable] = cell
        return cell

    def cell(self, variable: Variable) -> Optional[Cell]:
        env: Optional[LexicalEnvironment] = self
        while env is not None:
            found = env.bindings.get(variable)
            if found is not None:
                return found
            env = env.parent
        return None

    def lookup(self, variable: Variable) -> Any:
        cell = self.cell(variable)
        if cell is None:
            raise UnboundVariableError(f"unbound lexical variable {variable!r}")
        return cell.value

    def assign(self, variable: Variable, value: Any) -> Any:
        cell = self.cell(variable)
        if cell is None:
            raise UnboundVariableError(f"unbound lexical variable {variable!r}")
        cell.value = value
        return value


class DeepBindingStack:
    """Deep-bound dynamic variables: a stack of (name, cell) pairs.

    "Deep binding calls for binding a variable by pushing its name and new
    value onto a stack ... in general requires a linear search when accessing
    a variable."  The search cost is instrumented via ``search_steps`` and
    ``lookups`` so experiments can observe the cost the compiler's caching
    avoids.
    """

    def __init__(self) -> None:
        self._stack: List[Tuple[Symbol, Cell]] = []
        self.globals: Dict[Symbol, Cell] = {}
        self.lookups = 0
        self.search_steps = 0

    def depth(self) -> int:
        return len(self._stack)

    def all_cells(self):
        """Every live binding cell (stack and globals) -- GC roots."""
        for _, cell in self._stack:
            yield cell
        yield from self.globals.values()

    def push(self, name: Symbol, value: Any) -> None:
        self._stack.append((name, Cell(value)))

    def pop_to(self, depth: int) -> None:
        del self._stack[depth:]

    def find_cell(self, name: Symbol) -> Optional[Cell]:
        """Linear search from the top of the stack; counts work done."""
        self.lookups += 1
        for i in range(len(self._stack) - 1, -1, -1):
            self.search_steps += 1
            if self._stack[i][0] is name:
                return self._stack[i][1]
        cell = self.globals.get(name)
        return cell

    def lookup(self, name: Symbol) -> Any:
        cell = self.find_cell(name)
        if cell is None:
            raise UnboundVariableError(f"unbound special variable {name}")
        return cell.value

    def assign(self, name: Symbol, value: Any) -> Any:
        cell = self.find_cell(name)
        if cell is None:
            # setq on an unbound special creates a global (MACLISP behavior).
            self.globals[name] = Cell(value)
        else:
            cell.value = value
        return value

    def set_global(self, name: Symbol, value: Any) -> None:
        cell = self.globals.get(name)
        if cell is None:
            self.globals[name] = Cell(value)
        else:
            cell.value = value

    def context_switch(self, other: "DeepBindingStack") -> int:
        """Deep binding's headline strength: "fast context switching among
        processes with different sets of bindings (all that is required is
        to switch stack pointers)".  Returns the work units spent (O(1))."""
        self.search_steps += 1
        return 1


class ShallowBindingStack:
    """The alternative the paper contrasts (and INTERLISP later adopted):
    "the current value of a variable is maintained in a fixed location, and
    a variable is bound by pushing its name and *old* value onto a stack and
    then installing its new value in the fixed location.  This allows
    constant-time access, but for a context switch an arbitrarily large
    number of variables may have to be changed."

    Same interface as :class:`DeepBindingStack`; the instrumentation counts
    the work units each model spends so the E9 experiment can reproduce the
    trade-off quantitatively.
    """

    def __init__(self) -> None:
        # name -> the fixed value cell
        self._value_cells: Dict[Symbol, Cell] = {}
        # save stack of (name, old_value, had_binding)
        self._saves: List[Tuple[Symbol, Any, bool]] = []
        self.globals = self._value_cells  # fixed cells double as globals
        self.lookups = 0
        self.search_steps = 0

    def depth(self) -> int:
        return len(self._saves)

    def push(self, name: Symbol, value: Any) -> None:
        cell = self._value_cells.get(name)
        if cell is None:
            self._saves.append((name, None, False))
            self._value_cells[name] = Cell(value)
        else:
            self._saves.append((name, cell.value, True))
            cell.value = value
        self.search_steps += 1  # one install per bind

    def pop_to(self, depth: int) -> None:
        while len(self._saves) > depth:
            name, old_value, had_binding = self._saves.pop()
            self.search_steps += 1  # one restore per unbind
            if had_binding:
                self._value_cells[name].value = old_value
            else:
                del self._value_cells[name]

    def find_cell(self, name: Symbol) -> Optional[Cell]:
        """Constant time: the fixed location."""
        self.lookups += 1
        self.search_steps += 1
        return self._value_cells.get(name)

    def lookup(self, name: Symbol) -> Any:
        cell = self.find_cell(name)
        if cell is None:
            raise UnboundVariableError(f"unbound special variable {name}")
        return cell.value

    def assign(self, name: Symbol, value: Any) -> Any:
        cell = self.find_cell(name)
        if cell is None:
            self._value_cells[name] = Cell(value)
        else:
            cell.value = value
        return value

    def set_global(self, name: Symbol, value: Any) -> None:
        cell = self._value_cells.get(name)
        if cell is None:
            self._value_cells[name] = Cell(value)
        else:
            cell.value = value

    def all_cells(self):
        yield from self._value_cells.values()

    def context_switch(self, other: "ShallowBindingStack") -> int:
        """Unwind this process's bindings and rewind the other's: work
        proportional to both binding depths."""
        work = len(self._saves) + len(other._saves)
        self.search_steps += work
        return max(1, work)
