"""Reference interpreter: the semantics oracle for the compiler."""

from .environment import Cell, DeepBindingStack, LexicalEnvironment, ShallowBindingStack
from .interpreter import Interpreter, LispClosure, evaluate

__all__ = [
    "Cell",
    "DeepBindingStack",
    "ShallowBindingStack",
    "Interpreter",
    "LexicalEnvironment",
    "LispClosure",
    "evaluate",
]
