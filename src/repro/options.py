"""Compiler options.

The paper stresses that whole phases are optional ("Like the source-level
optimization phase, its use is completely optional, for it only affects the
efficiency of the resulting code").  Every experiment ablation in
EXPERIMENTS.md flips one of these flags.

Every field is declared either **semantic** (it changes the generated
code, so it must perturb the content-addressed cache key and it may be
overridden over the service wire protocol) or **non-semantic** (it only
controls reporting, verification, or the cache itself).  The declaration
lives on the dataclass field's ``metadata`` and is projected into
:data:`SEMANTIC_OPTION_FIELDS` / :data:`NON_SEMANTIC_OPTION_FIELDS` --
the single source of truth consumed by both :func:`repro.cache.cache_key`
and the ``repro.api`` wire schema.  A field added without an explicit
declaration defaults to semantic, which is the safe direction (an
unnecessary cache-key perturbation costs a miss; a missing one would
serve wrong code).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


def semantic(default):
    """A field that affects the generated code: part of the cache key and
    overridable through the service wire schema."""
    return field(default=default, metadata={"semantic": True})


def non_semantic(default):
    """A field that cannot change the generated code: excluded from the
    cache key (reporting, verification, and cache plumbing only)."""
    return field(default=default, metadata={"semantic": False})


@dataclass
class CompilerOptions:
    # --- source-level optimization (Section 5) ---
    optimize: bool = semantic(True)        # master switch for the meta-evaluator
    max_passes: int = semantic(20)         # fixpoint iteration bound
    optimizer_fuel: int = semantic(2000)   # total rule-firing bound (guards
                                           # against self-expanding forms)
    enable_beta: bool = semantic(True)     # the three beta-conversion rules
    enable_procedure_integration: bool = semantic(True)
    enable_constant_folding: bool = semantic(True)   # compile-time evaluation
    enable_if_distribution: bool = semantic(True)    # (if (if x y z) v w)
    enable_dead_code: bool = semantic(True)          # constant-predicate if/caseq
    enable_assoc_commut: bool = semantic(True)       # re-association + identities
    enable_argument_reversal: bool = semantic(True)  # constants first
    enable_sin_to_sinc: bool = semantic(True)        # sin$f -> sinc$f
    enable_type_specialization: bool = semantic(False)  # generic -> typed ops
    substitution_size_limit: int = semantic(2)   # copied-code bound
    integration_size_limit: int = semantic(40)   # multi-use integration bound

    # --- optimizer backend selection ---
    # "ordered": the paper's destructive fixpoint of rewrite rules
    # (meta.py; phase ordering decides what it finds).  "egraph": equality
    # saturation over the same rule inventory -- rewrites add equivalences
    # to an e-graph and the per-target cycle cost model extracts the
    # winner (optimizer/egraph/).  Semantic: the two backends can emit
    # different code for the same source.
    optimizer_backend: str = semantic("ordered")
    # E-graph growth bounds (on top of optimizer_fuel, which charges each
    # equivalence-producing firing): saturation stops -- with a diagnostic
    # warning, never an error -- when any bound is hit, and extraction
    # proceeds from the graph as it stands.
    egraph_max_classes: int = semantic(2000)
    egraph_max_nodes: int = semantic(5000)
    egraph_max_iterations: int = semantic(8)

    # --- global procedure integration (block compilation; the paper's
    #     loop-unrolling remark in Section 5) ---
    enable_global_integration: bool = semantic(False)  # inline known defuns
    global_integration_limit: int = semantic(30)       # inlining bound
    self_unroll_depth: int = semantic(0)       # times a fn may inline itself
                                               # ("achieves loop unrolling")

    # --- common subexpression elimination (Section 4.3; optional phase) ---
    enable_cse: bool = semantic(False)     # off by default, like the paper
    cse_min_complexity: int = semantic(3)

    # --- machine-dependent annotation (Section 6) ---
    enable_representation_analysis: bool = semantic(True)
    enable_pdl_numbers: bool = semantic(True)
    enable_special_caching: bool = semantic(True)
    enable_closure_analysis: bool = semantic(True)

    # --- codegen / allocator ---
    target: str = semantic("s1")           # "s1" | "vax" | "pdp10"
    enable_tnbind: bool = semantic(True)   # False: naive stack-slot allocation
    enable_peephole: bool = semantic(False)  # linear-block packing (Section 4.5;
                                             # the paper had none -- extension)
    enable_tail_calls: bool = semantic(True)  # False: every call pushes a frame
    registers_available: int = semantic(32)

    # --- execution tier (repro.machine.native) ---
    # How compiled CodeObjects are *run*, never what they contain: the
    # native tier executes the very same instruction stream through
    # translated Python blocks, so this must not perturb the cache key.
    tier: str = non_semantic("simulate")   # "simulate" | "native"

    # --- timing model (repro.machine.timing) ---
    # How executed cycles are *charged*, never what runs or what results:
    # "single" is the paper's per-opcode table model, "pipelined" adds
    # hazard stalls (data/control/structural) from the target's
    # PipelineDescription.  Results, instructions, and opcode counts are
    # identical under both, so it must not perturb the cache key.
    timing: str = non_semantic("single")   # "single" | "pipelined"

    # --- verification (repro.verify) ---
    # Non-semantic: the sanitizer either passes (the code is what it would
    # have been anyway) or raises (nothing is cached).
    verify_ir: bool = non_semantic(False)

    # --- diagnostics ---
    transcript: bool = non_semantic(False)   # record optimizer transcript
    transcript_stream: object = non_semantic(None)  # file-like; None keeps
                                                    # entries only
    trace_rewrites: bool = non_semantic(False)  # whole-function before/after
                                                # source per rewrite (costly)

    # --- compilation cache (repro.cache) ---
    # None (off), a directory path (memory LRU + on-disk store rooted
    # there), or a repro.cache.CompilationCache instance (possibly shared
    # between compilers).  Plumbing-only: never part of the cache key.
    cache: object = non_semantic(None)

    def __post_init__(self) -> None:
        # Fail at option-construction time, not deep inside codegen: an
        # unknown target raises repro.errors.UnknownTargetError here.
        from .target.machines import get_target

        get_target(self.target)
        from .machine.native import TIERS

        if self.tier not in TIERS:
            raise ValueError(
                f"unknown execution tier {self.tier!r}"
                f" (choose one of {', '.join(TIERS)})")
        from .machine.timing import TIMINGS

        if self.timing not in TIMINGS:
            raise ValueError(
                f"unknown timing model {self.timing!r}"
                f" (choose one of {', '.join(TIMINGS)})")
        if self.optimizer_backend not in OPTIMIZER_BACKENDS:
            raise ValueError(
                f"unknown optimizer backend {self.optimizer_backend!r}"
                f" (choose one of {', '.join(OPTIMIZER_BACKENDS)})")


#: The optimizer backend vocabulary (``CompilerOptions.optimizer_backend``).
OPTIMIZER_BACKENDS = ("ordered", "egraph")


def _field_is_semantic(f) -> bool:
    return bool(f.metadata.get("semantic", True))


#: Every CompilerOptions field that affects generated code, by name.
#: ``repro.cache`` hashes exactly these; the ``repro.api`` wire schema
#: accepts overrides for exactly these.
SEMANTIC_OPTION_FIELDS = frozenset(
    f.name for f in fields(CompilerOptions) if _field_is_semantic(f))

#: The complement: reporting/verification/cache plumbing.  Never hashed.
NON_SEMANTIC_OPTION_FIELDS = frozenset(
    f.name for f in fields(CompilerOptions) if not _field_is_semantic(f))


DEFAULT_OPTIONS = CompilerOptions()


def naive_options() -> CompilerOptions:
    """Everything off: the baseline configuration for ablation benches."""
    return CompilerOptions(
        optimize=False,
        enable_beta=False,
        enable_procedure_integration=False,
        enable_constant_folding=False,
        enable_if_distribution=False,
        enable_dead_code=False,
        enable_assoc_commut=False,
        enable_argument_reversal=False,
        enable_sin_to_sinc=False,
        enable_cse=False,
        enable_representation_analysis=False,
        enable_pdl_numbers=False,
        enable_special_caching=False,
        enable_closure_analysis=False,
        enable_tnbind=False,
    )
