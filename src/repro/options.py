"""Compiler options.

The paper stresses that whole phases are optional ("Like the source-level
optimization phase, its use is completely optional, for it only affects the
efficiency of the resulting code").  Every experiment ablation in
EXPERIMENTS.md flips one of these flags.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CompilerOptions:
    # --- source-level optimization (Section 5) ---
    optimize: bool = True                  # master switch for the meta-evaluator
    max_passes: int = 20                   # fixpoint iteration bound
    optimizer_fuel: int = 2000             # total rule-firing bound (guards
                                           # against self-expanding forms)
    enable_beta: bool = True               # the three beta-conversion rules
    enable_procedure_integration: bool = True
    enable_constant_folding: bool = True   # compile-time expression evaluation
    enable_if_distribution: bool = True    # (if (if x y z) v w) transformation
    enable_dead_code: bool = True          # constant-predicate if/caseq
    enable_assoc_commut: bool = True       # re-association + identity elimination
    enable_argument_reversal: bool = True  # constants first (CONSIDER-REVERSING)
    enable_sin_to_sinc: bool = True        # machine-inspired sin$f -> sinc$f
    enable_type_specialization: bool = False  # generic ops -> typed ops (extension)
    substitution_size_limit: int = 2       # copied-code bound for duplicating substitution
    integration_size_limit: int = 40       # complexity bound for multi-use integration

    # --- global procedure integration (block compilation; the paper's
    #     loop-unrolling remark in Section 5) ---
    enable_global_integration: bool = False  # inline known defuns at call sites
    global_integration_limit: int = 30       # complexity bound for inlining
    self_unroll_depth: int = 0                # times a fn may inline itself
                                              # ("achieves loop unrolling")

    # --- common subexpression elimination (Section 4.3; optional phase) ---
    enable_cse: bool = False               # off by default, like the paper
    cse_min_complexity: int = 3

    # --- machine-dependent annotation (Section 6) ---
    enable_representation_analysis: bool = True
    enable_pdl_numbers: bool = True
    enable_special_caching: bool = True
    enable_closure_analysis: bool = True

    # --- codegen / allocator ---
    target: str = "s1"                     # "s1" | "vax" | "pdp10" (retargeting)
    enable_tnbind: bool = True             # False: naive stack-slot allocation
    enable_peephole: bool = False          # linear-block packing (Section 4.5;
                                           # the paper had none -- extension)
    enable_tail_calls: bool = True         # False: every call pushes a frame (P6 ablation)
    registers_available: int = 32

    # --- verification (repro.verify) ---
    verify_ir: bool = False                # run the phase-boundary sanitizer
                                           # after every Table 1 phase; any
                                           # violation raises VerificationError

    # --- diagnostics ---
    transcript: bool = False               # record optimizer transcript entries
    transcript_stream: object = None       # file-like; None keeps entries only
    trace_rewrites: bool = False           # capture whole-function before/after
                                           # source per rewrite (repro.trace);
                                           # off by default: each firing costs
                                           # one extra back-translation

    # --- compilation cache (repro.cache) ---
    # None (off), a directory path (memory LRU + on-disk store rooted
    # there), or a repro.cache.CompilationCache instance (possibly shared
    # between compilers).  Presentation-only: never part of the cache key.
    cache: object = None

    def __post_init__(self) -> None:
        # Fail at option-construction time, not deep inside codegen: an
        # unknown target raises repro.errors.UnknownTargetError here.
        from .target.machines import get_target

        get_target(self.target)


DEFAULT_OPTIONS = CompilerOptions()


def naive_options() -> CompilerOptions:
    """Everything off: the baseline configuration for ablation benches."""
    return CompilerOptions(
        optimize=False,
        enable_beta=False,
        enable_procedure_integration=False,
        enable_constant_folding=False,
        enable_if_distribution=False,
        enable_dead_code=False,
        enable_assoc_commut=False,
        enable_argument_reversal=False,
        enable_sin_to_sinc=False,
        enable_cse=False,
        enable_representation_analysis=False,
        enable_pdl_numbers=False,
        enable_special_caching=False,
        enable_closure_analysis=False,
        enable_tnbind=False,
    )