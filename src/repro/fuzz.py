"""Seeded program generation and the verify-enabled fuzz harness.

The generator (formerly ``tests/genprog.py``; the tests now import it from
here) produces programs as *text* -- the compiler's real input surface --
from a ``random.Random`` seed, so every run sees the same corpus.  The
expression language is chosen so that every program

* terminates (no unbounded recursion, loop counts are literal),
* is total (no division, no car/cdr of atoms, no unbound variables),
* is deterministic (pure integer arithmetic and control flow),

which makes "interpreter == compiled" a meaningful oracle for any
generated program on any target.

:func:`run_fuzz` drives that corpus through the full pipeline with the
phase-boundary sanitizer enabled (``CompilerOptions.verify_ir``) and
differentially checks each compiled result against the reference
interpreter, per target.  With more than one *backend* it becomes the
optimizer A/B harness: every program compiles under each optimizer
backend, the parity oracle runs for each, and the report carries
per-program/per-target cycle counts plus per-rule deltas
(:meth:`FuzzReport.bench_json`, written to ``BENCH_egraph.json`` by the
CLI).

With more than one *timing* model the sweep additionally asserts that the
timing axis is strictly non-semantic: same results, same instruction and
opcode totals, same cycles on both tiers within each timing, pipelined
``base_cycles`` equal to the single-cycle total, and no stalls charged
under single-cycle timing.  CLI::

    python -m repro fuzz --seed 0 --count 100
    python -m repro fuzz --seed 7 --count 50 --target vax --no-verify
    python -m repro fuzz --seed 0 --count 50 --backend ordered --backend egraph
    python -m repro fuzz --seed 0 --count 50 --timing single --timing pipelined
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

_UNARY_OPS = ("1+", "1-", "abs", "zerop", "not")
_BINARY_OPS = ("+", "-", "*", "max", "min")
_COMPARE_OPS = ("<", ">", "=", "<=", ">=")

ALL_TARGETS = ("s1", "vax", "pdp10")


# ---------------------------------------------------------------------------
# program generation


def _gen_expr(rng: random.Random, env: Sequence[str], depth: int) -> str:
    """One pure integer-valued expression over the variables in *env*."""
    if depth <= 0 or rng.random() < 0.25:
        if env and rng.random() < 0.6:
            return rng.choice(list(env))
        return str(rng.randint(-30, 30))
    choice = rng.random()
    if choice < 0.30:
        op = rng.choice(_BINARY_OPS)
        return (f"({op} {_gen_expr(rng, env, depth - 1)} "
                f"{_gen_expr(rng, env, depth - 1)})")
    if choice < 0.45:
        op = rng.choice(_UNARY_OPS)
        inner = _gen_expr(rng, env, depth - 1)
        if op in ("zerop", "not"):
            # Boolean-producing ops only appear under `if`, via _gen_test.
            return f"(if ({op} {inner}) 1 0)"
        return f"({op} {inner})"
    if choice < 0.70:
        return (f"(if {_gen_test(rng, env, depth - 1)} "
                f"{_gen_expr(rng, env, depth - 1)} "
                f"{_gen_expr(rng, env, depth - 1)})")
    if choice < 0.85:
        var = f"v{rng.randint(0, 99)}"
        value = _gen_expr(rng, env, depth - 1)
        body = _gen_expr(rng, list(env) + [var], depth - 1)
        return f"(let (({var} {value})) {body})"
    # setq inside a let: exercises assignment + shadowing.
    var = f"s{rng.randint(0, 99)}"
    init = _gen_expr(rng, env, depth - 1)
    update = _gen_expr(rng, list(env) + [var], depth - 1)
    body = _gen_expr(rng, list(env) + [var], depth - 1)
    return f"(let (({var} {init})) (progn (setq {var} {update}) {body}))"


def _gen_test(rng: random.Random, env: Sequence[str], depth: int) -> str:
    op = rng.choice(_COMPARE_OPS)
    return (f"({op} {_gen_expr(rng, env, depth)} "
            f"{_gen_expr(rng, env, depth)})")


def generate_function(rng: random.Random, name: str = "f",
                      max_depth: int = 4) -> Tuple[str, List[int]]:
    """One ``(defun name (args...) body)`` plus argument values for a call."""
    n_args = rng.randint(1, 3)
    params = [f"a{i}" for i in range(n_args)]
    body = _gen_expr(rng, params, rng.randint(2, max_depth))
    source = f"(defun {name} ({' '.join(params)}) {body})"
    args = [rng.randint(-20, 20) for _ in params]
    return source, args


def generate_program(seed: int, n_functions: int = 1,
                     max_depth: int = 4) -> Tuple[str, str, List[int]]:
    """A deterministic program for *seed*: returns ``(source, entry_fn,
    entry_args)``.  With ``n_functions > 1`` the extra functions are
    compiled too (cache/batch load) but only the entry is called."""
    rng = random.Random(seed)
    sources = []
    entry_args: List[int] = []
    for index in range(n_functions):
        name = "f" if index == 0 else f"aux{index}"
        source, args = generate_function(rng, name=name, max_depth=max_depth)
        sources.append(source)
        if index == 0:
            entry_args = args
    return "\n".join(sources), "f", entry_args


def corpus(n_programs: int, base_seed: int = 0, n_functions: int = 1,
           max_depth: int = 4) -> List[Tuple[str, str, List[int]]]:
    """A reproducible list of ``(source, fn, args)`` programs."""
    return [generate_program(base_seed + i, n_functions=n_functions,
                             max_depth=max_depth)
            for i in range(n_programs)]


# ---------------------------------------------------------------------------
# the harness


@dataclass
class FuzzFailure:
    """One failed program: which seed, where it failed, and why."""

    seed: int
    target: str
    stage: str      # "interpret" | "compile" | "run" | "differential"
                    # | "telemetry" | "timing"
    message: str
    source: str
    tier: str = "simulate"   # execution tier for run/differential failures
    backend: str = "ordered"  # optimizer backend that produced the code
    timing: str = "single"   # timing model active for the failing run

    def render(self) -> str:
        return (f"seed {self.seed} [{self.target}/{self.tier}"
                f"/{self.backend}/{self.timing}] "
                f"{self.stage}: {self.message}\n    {self.source}")


@dataclass
class FuzzReport:
    """Everything one :func:`run_fuzz` call checked."""

    base_seed: int
    count: int
    targets: Tuple[str, ...]
    verify: bool
    tiers: Tuple[str, ...] = ("simulate",)
    backends: Tuple[str, ...] = ("ordered",)
    timings: Tuple[str, ...] = ("single",)
    compilations: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    #: One record per (seed, target) when more than one backend ran:
    #: simulator cycle counts per backend, the ordered-minus-egraph delta,
    #: and the equivalence rules the e-graph compile fired.
    cycle_records: List[Dict[str, Any]] = field(default_factory=list)
    #: With ``telemetry=True``: per-tier merged telemetry dumps plus an
    #: overall merge ({"tiers": {tier: to_json()}, "merged": to_json()});
    #: the sweep has already asserted cycle conservation per run.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"fuzz: {self.count} program(s) from seed {self.base_seed}, "
            f"targets {'/'.join(self.targets)}, "
            f"tiers {'/'.join(self.tiers)}, "
            f"backends {'/'.join(self.backends)}, "
            f"timings {'/'.join(self.timings)}, "
            f"verify_ir={'on' if self.verify else 'off'}: "
            f"{self.compilations} compilation(s), "
            f"{len(self.failures)} failure(s)"
        ]
        if self.telemetry:
            for tier, dump in sorted(self.telemetry["tiers"].items()):
                totals = dump["totals"]
                attributed = totals["attributed_cycles"]
                share = totals["fast_path_cycles"] / attributed \
                    if attributed else 0.0
                lines.append(
                    f"  telemetry [{tier}]: {attributed} cycles attributed "
                    f"(conserved), fast-path share {share:.1%}")
        if self.cycle_records:
            summary = self.backend_summary()
            lines.append(
                f"  backend A/B: {summary['wins']} win(s), "
                f"{summary['ties']} tie(s), "
                f"{summary['regressions']} regression(s) -- e-graph "
                f"matches or beats ordered on "
                f"{summary['match_or_beat_pct']:.1f}% of runs")
        for failure in self.failures:
            lines.append("  " + failure.render())
        return "\n".join(lines)

    def backend_summary(self) -> Dict[str, Any]:
        """Win/tie/regression totals for the two-backend A/B sweep
        (cycle deltas are ordered minus e-graph: positive is a win)."""
        wins = sum(1 for r in self.cycle_records if r["delta"] > 0)
        ties = sum(1 for r in self.cycle_records if r["delta"] == 0)
        regressions = sum(1 for r in self.cycle_records if r["delta"] < 0)
        total = len(self.cycle_records)
        return {
            "wins": wins,
            "ties": ties,
            "regressions": regressions,
            "total": total,
            "match_or_beat_pct":
                100.0 * (wins + ties) / total if total else 100.0,
        }

    def per_rule_deltas(self) -> Dict[str, Dict[str, Any]]:
        """Cycle deltas attributed to the equivalence rules that fired:
        for each rule, how many A/B runs it fired in and the summed
        ordered-minus-egraph delta of those runs.  (A run's delta counts
        toward every rule that fired in it -- attribution is per-run, not
        a per-rule decomposition.)"""
        per_rule: Dict[str, Dict[str, Any]] = {}
        for record in self.cycle_records:
            for rule, fires in record["equivalence_rules"].items():
                entry = per_rule.setdefault(
                    rule, {"fires": 0, "runs": 0, "total_delta": 0})
                entry["fires"] += fires
                entry["runs"] += 1
                entry["total_delta"] += record["delta"]
        return per_rule

    def bench_json(self) -> Dict[str, Any]:
        """The ``BENCH_egraph.json`` payload: per-program cycle counts per
        backend and per-target, per-rule deltas, and the summary the
        acceptance gate reads."""
        return {
            "bench": "egraph-backend-differential",
            "base_seed": self.base_seed,
            "count": self.count,
            "targets": list(self.targets),
            "backends": list(self.backends),
            "failures": len(self.failures),
            "programs": self.cycle_records,
            "per_rule": self.per_rule_deltas(),
            "summary": self.backend_summary(),
        }


def _interpret(source: str, fn: str, args: Sequence[int]):
    from .datum import sym
    from .interp import Interpreter

    interp = Interpreter()
    interp.eval_source(source)
    return interp.apply_function(interp.global_functions[sym(fn)], args)


def _equivalence_rule_counts(compiler) -> Dict[str, int]:
    """Fire counts of equivalence-kind transcript entries across every
    function the compiler produced (the e-graph backend's firings)."""
    counts: Dict[str, int] = {}
    for compiled in compiler.functions.values():
        transcript = getattr(compiled, "transcript", None)
        if transcript is None:
            continue
        for entry in transcript.entries:
            if getattr(entry, "kind", "rewrite") == "equivalence":
                counts[entry.rule] = counts.get(entry.rule, 0) + 1
    return counts


def _timing_parity_failures(grid: Dict[Tuple[str, str], Dict[str, Any]],
                            ) -> List[str]:
    """Cross-(timing, tier) invariant violations for one compiled program.

    *grid* maps ``(timing, tier)`` to that run's ``Machine.stats()``.  The
    timing model must be strictly non-semantic: every run retires the same
    instructions with the same opcode mix; within a timing model both
    tiers charge identical cycles; pipelined base cycles equal the
    single-cycle total; and single-cycle runs charge no stalls."""
    problems: List[str] = []
    keys = sorted(grid)
    first_key = keys[0]
    first = grid[first_key]
    for key in keys[1:]:
        stats = grid[key]
        if stats["instructions"] != first["instructions"] \
                or stats["opcodes"] != first["opcodes"]:
            problems.append(
                f"instruction stream differs between {first_key} "
                f"({first['instructions']} instrs) and {key} "
                f"({stats['instructions']} instrs)")
    timings = sorted({timing for timing, _ in keys})
    tiers = sorted({tier for _, tier in keys})
    for timing in timings:
        cycles = {tier: grid[(timing, tier)]["cycles"]
                  for tier in tiers if (timing, tier) in grid}
        if len(set(cycles.values())) > 1:
            problems.append(
                f"cycle counts diverge across tiers under {timing} "
                f"timing: {cycles}")
    for tier in tiers:
        single = grid.get(("single", tier))
        pipelined = grid.get(("pipelined", tier))
        if single and pipelined \
                and pipelined["base_cycles"] != single["cycles"]:
            problems.append(
                f"pipelined base_cycles {pipelined['base_cycles']} != "
                f"single-cycle total {single['cycles']} on tier {tier}")
        if single and any(single["stall_cycles"].values()):
            problems.append(
                f"single-cycle timing charged stalls on tier {tier}: "
                f"{single['stall_cycles']}")
    return problems


def run_fuzz(base_seed: int = 0, count: int = 50,
             targets: Sequence[str] = ALL_TARGETS, verify: bool = True,
             options=None, max_depth: int = 4,
             stop_after: Optional[int] = None,
             tiers: Sequence[str] = ("simulate", "native"),
             backends: Sequence[str] = ("ordered",),
             timings: Sequence[str] = ("single",),
             telemetry: bool = False) -> FuzzReport:
    """Generate *count* programs from *base_seed* and, per target, compile
    them with the phase-boundary sanitizer (unless ``verify=False``) and
    check compiled results against the reference interpreter -- once per
    execution *tier* and timing model, so the default sweep is the
    three-way differential oracle ``interpreter == simulator == native``
    on every program.

    With more than one *timing* model the harness also asserts the
    non-semantic contract across the full (timing, tier) grid per
    program: identical results, identical instruction/opcode totals,
    identical cycles across tiers within each timing, ``pipelined
    base_cycles == single cycles``, and zero stalls under single-cycle
    timing (stage ``timing`` failures).

    With more than one optimizer *backend*, every program compiles under
    each backend and the oracle runs for each -- plus, when both
    ``ordered`` and ``egraph`` ran cleanly on a (seed, target), the report
    records their simulator cycle counts, the delta, and the equivalence
    rules the e-graph compile fired (:attr:`FuzzReport.cycle_records`).

    *options* is an optional :class:`CompilerOptions` template; target,
    verify_ir, and optimizer_backend are overridden per run.  *stop_after*
    bounds the number of recorded failures (None: check the whole corpus
    regardless).

    With ``telemetry=True`` every machine runs with execution telemetry
    on, the harness asserts cycle conservation (``fast + fallback ==
    cycles``; a mismatch is a recorded failure, stage ``telemetry``), and
    :attr:`FuzzReport.telemetry` carries per-tier merged dumps.
    """
    from .compiler import Compiler
    from .datum import lisp_equal, sym
    from .errors import ReproError
    from .options import CompilerOptions
    from .reader.printer import write_to_string
    from .telemetry import MachineTelemetry

    template = options or CompilerOptions()
    measure_ab = len(backends) > 1
    merged_telemetry: Dict[str, MachineTelemetry] = {}
    report = FuzzReport(base_seed=base_seed, count=count,
                        targets=tuple(targets), verify=verify,
                        tiers=tuple(tiers), backends=tuple(backends),
                        timings=tuple(timings))
    for index in range(count):
        seed = base_seed + index
        source, fn, args = generate_program(seed, max_depth=max_depth)
        try:
            expected = _interpret(source, fn, args)
        except ReproError as err:
            report.failures.append(FuzzFailure(
                seed, "-", "interpret", f"{type(err).__name__}: {err}",
                source, tier="-", backend="-"))
            continue
        for target in targets:
            #: backend -> (simulate-tier cycles, equivalence rule counts)
            measured: Dict[str, Any] = {}
            for backend in backends:
                run_options = dataclasses.replace(
                    template, target=target, verify_ir=verify,
                    optimizer_backend=backend,
                    transcript=measure_ab or template.transcript)
                try:
                    compiler = Compiler(run_options)
                    compiler.compile_source(source)
                    report.compilations += 1
                except ReproError as err:
                    report.failures.append(FuzzFailure(
                        seed, target, "compile",
                        f"{type(err).__name__}: {err}", source, tier="-",
                        backend=backend))
                    continue
                # One compilation, one run per (timing, tier) cell: every
                # cell executes the same CodeObjects, so any disagreement
                # is an execution or timing-model bug, not a compilation
                # difference.
                clean = True
                grid: Dict[Tuple[str, str], Dict[str, Any]] = {}
                for timing in timings:
                    for tier in tiers:
                        machine = compiler.machine()
                        machine.tier = tier
                        if machine.timing != timing:
                            machine.set_timing(timing)
                        if telemetry:
                            machine.enable_telemetry()
                        try:
                            got = machine.run(sym(fn), list(args))
                        except ReproError as err:
                            report.failures.append(FuzzFailure(
                                seed, target, "run",
                                f"{type(err).__name__}: {err}", source,
                                tier=tier, backend=backend,
                                timing=timing))
                            clean = False
                            continue
                        if telemetry:
                            attributed = \
                                machine.telemetry.attributed_cycles()
                            if attributed != machine.cycles:
                                report.failures.append(FuzzFailure(
                                    seed, target, "telemetry",
                                    f"cycle conservation violated: "
                                    f"{attributed} attributed != "
                                    f"{machine.cycles} executed",
                                    source, tier=tier, backend=backend,
                                    timing=timing))
                                clean = False
                            merged_telemetry.setdefault(
                                tier, MachineTelemetry()).merge(
                                    machine.telemetry)
                        if not lisp_equal(got, expected):
                            report.failures.append(FuzzFailure(
                                seed, target, "differential",
                                f"compiled {write_to_string(got)} != "
                                f"interpreted "
                                f"{write_to_string(expected)} "
                                f"(args {args})",
                                source, tier=tier, backend=backend,
                                timing=timing))
                            clean = False
                            continue
                        grid[(timing, tier)] = machine.stats()
                        if measure_ab and clean \
                                and backend not in measured \
                                and tier == "simulate" \
                                and timing == timings[0]:
                            measured[backend] = (
                                machine.stats()["cycles"],
                                _equivalence_rule_counts(compiler))
                if grid:
                    for problem in _timing_parity_failures(grid):
                        report.failures.append(FuzzFailure(
                            seed, target, "timing", problem, source,
                            tier="*", backend=backend, timing="*"))
            if measure_ab and "ordered" in measured and "egraph" in measured:
                ordered_cycles = measured["ordered"][0]
                egraph_cycles, rules = measured["egraph"]
                report.cycle_records.append({
                    "seed": seed,
                    "target": target,
                    "cycles": {"ordered": ordered_cycles,
                               "egraph": egraph_cycles},
                    "delta": ordered_cycles - egraph_cycles,
                    "equivalence_rules": rules,
                })
        if stop_after is not None and len(report.failures) >= stop_after:
            break
    if telemetry:
        overall = MachineTelemetry()
        for tier_telemetry in merged_telemetry.values():
            overall.merge(tier_telemetry)
        report.telemetry = {
            "tiers": {tier: t.to_json()
                      for tier, t in merged_telemetry.items()},
            "merged": overall.to_json(),
        }
    return report
