"""Trace exporters: Chrome trace-event JSON and Prometheus text metrics.

The diagnostics layer (PR 2) records *what* each compilation did --
per-phase wall-clock spans (now with ``started_s`` start stamps), rewrite
transcript entries (with ``at_s`` stamps on the same ``perf_counter``
clock), counters, and messages.  This module turns those records into two
standard observability formats:

* :func:`build_chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  trace-event JSON format (the ``{"traceEvents": [...]}`` flavor), loadable
  in Perfetto / ``chrome://tracing``.  Phases become complete spans
  (``"ph": "X"``), rewrites and counters become instant events
  (``"ph": "i"``), and every compilation source gets its own pid/tid track
  (the batch driver passes one track per worker process).  Because
  ``perf_counter`` epochs differ across processes, timestamps are
  normalized per track to a zero base.

* :func:`prometheus_metrics` / :func:`write_metrics` -- a Prometheus text
  exposition dump of phase seconds, rule firings, and counters, for diffing
  runs or scraping from CI artifacts.

Both accept :class:`repro.diagnostics.Diagnostics` objects or their
``to_json()`` dicts (the batch driver ships the latter across the process
boundary).

PR 9 adds the *machine* side of the story, fed by
:class:`repro.telemetry.MachineTelemetry` (objects or ``to_json()``
dicts):

* :func:`machine_trace_events` / :func:`build_machine_trace` /
  :func:`write_machine_trace` -- execution-track Chrome events: one span
  per ``Machine.run()``, one span per GC pause, and a ``heap live``
  counter track sampled on an allocation stride.  ``build_chrome_trace``
  takes the same telemetry as an optional argument and appends the
  execution track next to the compile tracks.
* :func:`build_request_trace` / :func:`write_request_trace` -- one
  Perfetto-loadable trace for a daemon round trip: the client wall-clock
  span, the server's reported queue wait and execute windows, the compile
  phases, and the execution spans, every event tagged with the request's
  ``trace_id``.  Client and server clocks are unrelated ``perf_counter``
  epochs, so the server window is centred inside the client span (the
  residue is symmetric transport time).
* :func:`collapsed_stacks` / :func:`write_flamegraph` -- the telemetry
  stack profile in Brendan Gregg's collapsed-stack format
  (``main;loop;leaf 1234`` -- one line per stack, cycles as the weight),
  ready for ``flamegraph.pl`` or speedscope.
* ``repro_machine_*`` Prometheus families (path-attributed cycles,
  hazard-stall cycles by category, inline-cache events, GC totals, heap
  occupancy, block executions) via the ``telemetry`` argument of
  :func:`prometheus_metrics` / :func:`write_metrics`.
* :func:`parse_prometheus_text` -- a strict line-by-line parser for the
  text exposition format, so tests and CI validate metrics documents
  structurally instead of grepping.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: One trace source: (diagnostics | diagnostics-json, pid, tid, label).
TraceEntry = Tuple[Any, int, int, str]


def _as_json(diagnostics: Any) -> Mapping[str, Any]:
    if hasattr(diagnostics, "to_json"):
        return diagnostics.to_json()
    return diagnostics


def _entry_events(diagnostics: Any, pid: int, tid: int, label: str
                  ) -> List[Dict[str, Any]]:
    """Raw events for one compilation, ts/dur still in perf_counter
    *seconds* (the builder converts to normalized microseconds)."""
    data = _as_json(diagnostics)
    events: List[Dict[str, Any]] = []
    phases = [p for p in data.get("phases", ())
              if p.get("started_s") is not None]
    if not phases:
        return events
    start = min(p["started_s"] for p in phases)
    end = max(p["started_s"] + p.get("duration_s", 0.0) for p in phases)
    # The enclosing compile span guarantees every phase nests inside it
    # (tnbind runs *inside* the codegen wall-clock window, so sibling
    # phase spans may overlap; the parent is the containment invariant).
    events.append({
        "name": label or "compile", "cat": "compile", "ph": "X",
        "ts": start, "dur": max(end - start, 0.0), "pid": pid, "tid": tid,
    })
    for record in phases:
        events.append({
            "name": record["phase"], "cat": "phase", "ph": "X",
            "ts": record["started_s"],
            "dur": max(record.get("duration_s", 0.0), 0.0),
            "pid": pid, "tid": tid,
            "args": {
                "function": record.get("function", ""),
                "nodes_before": record.get("nodes_before"),
                "nodes_after": record.get("nodes_after"),
            },
        })
    for rewrite in data.get("rewrites", ()):
        at = rewrite.get("at_s")
        if at is None:
            continue
        events.append({
            "name": rewrite.get("rule", "rewrite"), "cat": "rewrite",
            "ph": "i", "s": "t",
            "ts": min(max(at, start), end), "pid": pid, "tid": tid,
            "args": {"seq": rewrite.get("seq"),
                     "phase": rewrite.get("phase"),
                     "before": rewrite.get("before"),
                     "after": rewrite.get("after")},
        })
    for counter, value in sorted(data.get("counters", {}).items()):
        events.append({
            "name": counter, "cat": "counter", "ph": "i", "s": "t",
            "ts": end, "pid": pid, "tid": tid,
            "args": {"value": value},
        })
    return events


def build_chrome_trace(entries: Iterable[TraceEntry],
                       telemetry: Any = None) -> Dict[str, Any]:
    """Assemble the trace dict from (diagnostics, pid, tid, label) tuples.

    Timestamps are normalized per (pid, tid) track to a zero base and
    converted to microseconds (the format's unit), so tracks recorded on
    different process clocks line up at the origin.

    With *telemetry* (a :class:`repro.telemetry.MachineTelemetry` or its
    ``to_json()`` dict), an "execution" track -- run spans, GC pauses, a
    heap-occupancy counter -- is appended on its own pid next to the
    compile tracks.
    """
    events: List[Dict[str, Any]] = []
    track_labels: Dict[Tuple[int, int], str] = {}
    for diagnostics, pid, tid, label in entries:
        events.extend(_entry_events(diagnostics, pid, tid, label))
        track_labels.setdefault((pid, tid), label)
    if telemetry is not None:
        machine_pid = max((pid for pid, _ in track_labels), default=0) + 1
        events.extend(machine_trace_events(telemetry, pid=machine_pid,
                                           tid=0))
        track_labels.setdefault((machine_pid, 0), "execution")
    bases: Dict[Tuple[int, int], float] = {}
    for event in events:
        track = (event["pid"], event["tid"])
        ts = event["ts"]
        if track not in bases or ts < bases[track]:
            bases[track] = ts
    for event in events:
        base = bases[(event["pid"], event["tid"])]
        event["ts"] = round((event["ts"] - base) * 1e6, 3)
        if "dur" in event:
            event["dur"] = round(event["dur"] * 1e6, 3)
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    metadata: List[Dict[str, Any]] = []
    for (pid, tid), label in sorted(track_labels.items()):
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "ts": 0, "args": {"name": label or f"track {pid}:{tid}"},
        })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, entries: Iterable[TraceEntry],
                       telemetry: Any = None) -> int:
    """Write the Chrome trace JSON; returns the number of trace events."""
    trace = build_chrome_trace(entries, telemetry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, default=str)
        handle.write("\n")
    return len(trace["traceEvents"])


# ---------------------------------------------------------------------------
# machine telemetry -> Chrome trace / flamegraph


def _telemetry_json(telemetry: Any) -> Mapping[str, Any]:
    if hasattr(telemetry, "to_json"):
        return telemetry.to_json()
    return telemetry


def machine_trace_events(telemetry: Any, pid: int = 1, tid: int = 1,
                         trace_id: Optional[str] = None
                         ) -> List[Dict[str, Any]]:
    """Raw Chrome events for one telemetry dump, ts/dur still in
    perf_counter *seconds* (builders normalize to microseconds): one
    complete span per ``Machine.run()`` (cat ``execution``), one per GC
    pause (cat ``gc``), and a ``heap live`` counter series from the
    occupancy timeline."""
    data = _telemetry_json(telemetry)
    tag: Dict[str, Any] = {"trace_id": trace_id} if trace_id else {}
    events: List[Dict[str, Any]] = []
    for span in data.get("run_spans", ()):
        if span.get("started_s") is None or span.get("duration_s") is None:
            continue
        events.append({
            "name": f"run {span.get('name', '?')}", "cat": "execution",
            "ph": "X", "ts": span["started_s"],
            "dur": max(span["duration_s"], 0.0), "pid": pid, "tid": tid,
            "args": {**tag, "tier": span.get("tier"),
                     "timing": span.get("timing"),
                     "cycles": span.get("cycles"),
                     "instructions": span.get("instructions"),
                     "stall_cycles": span.get("stall_cycles"),
                     "processor": span.get("processor")},
        })
    for event in data.get("gc_events", ()):
        if event.get("at_s") is None:
            continue
        events.append({
            "name": f"gc [{event.get('reason', '?')}]", "cat": "gc",
            "ph": "X", "ts": event["at_s"],
            "dur": max(event.get("pause_s", 0.0), 0.0),
            "pid": pid, "tid": tid,
            "args": {**tag, "collected": event.get("collected"),
                     "live_before": event.get("live_before"),
                     "live_after": event.get("live_after"),
                     "watermark": event.get("watermark"),
                     "processor": event.get("processor")},
        })
    for sample in data.get("heap_samples", ()):
        if sample.get("at_s") is None:
            continue
        events.append({
            "name": "heap live", "cat": "heap", "ph": "C",
            "ts": sample["at_s"], "pid": pid, "tid": tid,
            "args": {"live": sample.get("live", 0)},
        })
    return events


def build_machine_trace(telemetry: Any) -> Dict[str, Any]:
    """A standalone Chrome trace holding just the execution track."""
    return build_chrome_trace((), telemetry)


def write_machine_trace(path: str, telemetry: Any) -> int:
    """Write the execution-only trace; returns the number of events."""
    trace = build_machine_trace(telemetry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, default=str)
        handle.write("\n")
    return len(trace["traceEvents"])


def build_request_trace(record: Mapping[str, Any],
                        diagnostics: Any = None,
                        telemetry: Any = None) -> Dict[str, Any]:
    """One Perfetto trace for one daemon round trip.

    *record* is what :meth:`repro.client.ServiceClient.compile_traced`
    returns alongside the response: ``{"trace_id", "client":
    {"started_s", "duration_s"}, "server_timing": {"queue_wait_s",
    "execute_s"}}``.  The client span anchors at zero; the server window
    (queue wait, then execute) is centred inside it because the two
    perf_counter clocks share no epoch -- the symmetric residue is
    transport time.  *diagnostics* (the compile's) and *telemetry* (the
    resulting execution's) nest inside the execute window on their own
    threads.  Every event's args carry the ``trace_id``."""
    trace_id = str(record.get("trace_id", ""))
    client = record.get("client") or {}
    client_dur = max(float(client.get("duration_s", 0.0) or 0.0), 0.0)
    timing = record.get("server_timing") or {}
    queue_wait = max(float(timing.get("queue_wait_s", 0.0) or 0.0), 0.0)
    execute = max(float(timing.get("execute_s", 0.0) or 0.0), 0.0)
    offset = max((client_dur - queue_wait - execute) / 2.0, 0.0)
    tag = {"trace_id": trace_id}
    events: List[Dict[str, Any]] = [{
        "name": f"request {trace_id}", "cat": "client", "ph": "X",
        "ts": 0.0, "dur": client_dur, "pid": 1, "tid": 1, "args": dict(tag),
    }]
    if timing:
        events.append({
            "name": "queue-wait", "cat": "server", "ph": "X",
            "ts": offset, "dur": queue_wait, "pid": 1, "tid": 2,
            "args": dict(tag),
        })
        events.append({
            "name": "execute", "cat": "server", "ph": "X",
            "ts": offset + queue_wait, "dur": execute, "pid": 1, "tid": 2,
            "args": dict(tag),
        })
    server_start = offset + queue_wait
    if diagnostics is not None:
        data = _as_json(diagnostics)
        phases = [p for p in data.get("phases", ())
                  if p.get("started_s") is not None]
        if phases:
            base = min(p["started_s"] for p in phases)
            for phase in phases:
                events.append({
                    "name": phase["phase"], "cat": "phase", "ph": "X",
                    "ts": server_start + (phase["started_s"] - base),
                    "dur": max(phase.get("duration_s", 0.0), 0.0),
                    "pid": 1, "tid": 2,
                    "args": {**tag,
                             "function": phase.get("function", "")},
                })
    if telemetry is not None:
        raw = machine_trace_events(telemetry, pid=1, tid=3,
                                   trace_id=trace_id)
        if raw:
            base = min(event["ts"] for event in raw)
            for event in raw:
                event["ts"] = server_start + (event["ts"] - base)
            events.extend(raw)
    for event in events:
        event["ts"] = round(event["ts"] * 1e6, 3)
        if "dur" in event:
            event["dur"] = round(event["dur"] * 1e6, 3)
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    metadata = [{"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "ts": 0, "args": {"name": name}}
                for tid, name in ((1, "client"), (2, "server"),
                                  (3, "execution"))]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_request_trace(path: str, record: Mapping[str, Any],
                        diagnostics: Any = None,
                        telemetry: Any = None) -> int:
    trace = build_request_trace(record, diagnostics, telemetry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, default=str)
        handle.write("\n")
    return len(trace["traceEvents"])


def collapsed_stacks(telemetry: Any) -> List[str]:
    """The telemetry stack profile in collapsed-stack format: one
    ``outer;inner;leaf cycles`` line per distinct call stack, weights in
    simulated cycles (deterministic, unlike wall-clock samples)."""
    data = _telemetry_json(telemetry)
    lines = []
    for entry in data.get("stacks", ()):
        stack = entry.get("stack") or ()
        cycles = entry.get("cycles", 0)
        if not stack or not cycles:
            continue
        lines.append(";".join(str(frame) for frame in stack)
                     + f" {cycles}")
    return lines


def write_flamegraph(path: str, telemetry: Any) -> int:
    """Write the collapsed-stack file; returns the number of stacks."""
    lines = collapsed_stacks(telemetry)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def new_metric_totals() -> Dict[str, Any]:
    """An empty running-totals accumulator for
    :func:`merge_diagnostics_totals` / :func:`prometheus_from_totals`.
    The compile daemon keeps one of these alive for its whole run instead
    of retaining every compilation's diagnostics."""
    return {"compilations": 0, "phase_seconds": {}, "rule_fires": {},
            "counters": {}}


def merge_diagnostics_totals(totals: Dict[str, Any],
                             diagnostics: Any) -> Dict[str, Any]:
    """Fold one compilation's diagnostics (object or ``to_json()`` dict)
    into a running *totals* accumulator; returns *totals*."""
    data = _as_json(diagnostics)
    totals["compilations"] += 1
    phase_seconds = totals["phase_seconds"]
    for record in data.get("phases", ()):
        phase = record["phase"]
        phase_seconds[phase] = phase_seconds.get(phase, 0.0) \
            + record.get("duration_s", 0.0)
    rule_fires = totals["rule_fires"]
    for rule, count in data.get("rule_fires", {}).items():
        rule_fires[rule] = rule_fires.get(rule, 0) + count
    counters = totals["counters"]
    for counter, value in data.get("counters", {}).items():
        counters[counter] = counters.get(counter, 0) + value
    return totals


def prometheus_metrics(diagnostics_list: Sequence[Any],
                       profile: Optional[Mapping[str, Any]] = None,
                       telemetry: Any = None) -> str:
    """Render phase seconds, rule firings, counters (summed over the given
    compilations), plus optional machine-profile gauges and
    ``repro_machine_*`` telemetry families, in the Prometheus text
    exposition format."""
    totals = new_metric_totals()
    for diagnostics in diagnostics_list:
        merge_diagnostics_totals(totals, diagnostics)
    return prometheus_from_totals(totals, profile, telemetry)


def machine_metric_lines(telemetry: Any) -> List[str]:
    """The ``repro_machine_*`` families for one telemetry dump: cycles
    attributed by execution path and opcode, inline-cache events by call
    site, GC totals, heap occupancy, and per-block execution counts."""
    data = _telemetry_json(telemetry)
    lines = [
        "# HELP repro_machine_path_cycles_total Simulated cycles by "
        "execution path (fast_path = inline generated code, fallback = "
        "simulator handlers) and opcode.",
        "# TYPE repro_machine_path_cycles_total counter",
    ]
    for path in ("fast_path", "fallback"):
        section = data.get(path, {})
        for opcode in sorted(section):
            lines.append(
                f'repro_machine_path_cycles_total{{path="{path}",opcode="'
                f'{_escape_label(opcode)}"}} {section[opcode]["cycles"]}')
    lines.append("# HELP repro_machine_stall_cycles_total Pipeline stall "
                 "cycles charged by the pipelined timing model, by hazard "
                 "category (all zero under single-cycle timing).")
    lines.append("# TYPE repro_machine_stall_cycles_total counter")
    stalls = data.get("stall_cycles", {})
    for category in ("data", "control", "structural"):
        lines.append(f'repro_machine_stall_cycles_total{{category="'
                     f'{category}"}} {stalls.get(category, 0)}')
    lines.append("# HELP repro_machine_ic_events_total Inline-cache "
                 "events by call site.")
    lines.append("# TYPE repro_machine_ic_events_total counter")
    ic_sites = data.get("ic_sites", {})
    for site in sorted(ic_sites):
        cell = ic_sites[site]
        for event in ("hits", "misses", "invalidations"):
            lines.append(
                f'repro_machine_ic_events_total{{site="'
                f'{_escape_label(site)}",event="{event}"}} {cell[event]}')
    gc_events = data.get("gc_events", ())
    lines.append("# HELP repro_machine_gc_collections_total Garbage "
                 "collections observed, by trigger reason.")
    lines.append("# TYPE repro_machine_gc_collections_total counter")
    reasons: Dict[str, int] = {}
    for event in gc_events:
        reason = str(event.get("reason", "?"))
        reasons[reason] = reasons.get(reason, 0) + 1
    for reason in sorted(reasons):
        lines.append(f'repro_machine_gc_collections_total{{reason="'
                     f'{_escape_label(reason)}"}} {reasons[reason]}')
    pause = sum(event.get("pause_s", 0.0) for event in gc_events)
    reclaimed = sum(event.get("collected", 0) for event in gc_events)
    lines.append("# HELP repro_machine_gc_pause_seconds_total Wall-clock "
                 "seconds spent inside the collector.")
    lines.append("# TYPE repro_machine_gc_pause_seconds_total counter")
    lines.append(f"repro_machine_gc_pause_seconds_total {pause:.9f}")
    lines.append("# HELP repro_machine_gc_reclaimed_total Objects "
                 "reclaimed by the collector.")
    lines.append("# TYPE repro_machine_gc_reclaimed_total counter")
    lines.append(f"repro_machine_gc_reclaimed_total {reclaimed}")
    samples = data.get("heap_samples", ())
    if samples:
        lines.append("# HELP repro_machine_heap_live_objects Live heap "
                     "objects at the last occupancy sample.")
        lines.append("# TYPE repro_machine_heap_live_objects gauge")
        lines.append(f"repro_machine_heap_live_objects "
                     f"{samples[-1].get('live', 0)}")
    lines.append("# HELP repro_machine_block_executions_total Native-tier "
                 "basic-block executions (hotness).")
    lines.append("# TYPE repro_machine_block_executions_total counter")
    blocks = data.get("blocks", {})
    for label in sorted(blocks):
        lines.append(f'repro_machine_block_executions_total{{block="'
                     f'{_escape_label(label)}"}} {blocks[label]["runs"]}')
    return lines


def prometheus_from_totals(totals: Mapping[str, Any],
                           profile: Optional[Mapping[str, Any]] = None,
                           telemetry: Any = None) -> str:
    """Render an already-aggregated totals accumulator (see
    :func:`new_metric_totals`) in the Prometheus text format."""
    phase_seconds = totals["phase_seconds"]
    rule_fires = totals["rule_fires"]
    counters = totals["counters"]
    compilations = totals["compilations"]
    lines = [
        "# HELP repro_compilations_total Compilations measured in this dump.",
        "# TYPE repro_compilations_total counter",
        f"repro_compilations_total {compilations}",
        "# HELP repro_phase_seconds_total Wall-clock seconds per "
        "Table 1 phase.",
        "# TYPE repro_phase_seconds_total counter",
    ]
    for phase in sorted(phase_seconds):
        lines.append(f'repro_phase_seconds_total{{phase="'
                     f'{_escape_label(phase)}"}} {phase_seconds[phase]:.9f}')
    lines.append("# HELP repro_rule_fires_total Optimizer/peephole rule "
                 "firings.")
    lines.append("# TYPE repro_rule_fires_total counter")
    for rule in sorted(rule_fires):
        lines.append(f'repro_rule_fires_total{{rule="'
                     f'{_escape_label(rule)}"}} {rule_fires[rule]}')
    lines.append("# HELP repro_events_total Event counters (cache, batch).")
    lines.append("# TYPE repro_events_total counter")
    for counter in sorted(counters):
        lines.append(f'repro_events_total{{counter="'
                     f'{_escape_label(counter)}"}} {counters[counter]}')
    if profile:
        lines.append("# HELP repro_machine_cycles_total Simulated cycles "
                     "by opcode (exact profile).")
        lines.append("# TYPE repro_machine_cycles_total counter")
        for opcode in sorted(profile.get("opcodes", {})):
            stats = profile["opcodes"][opcode]
            lines.append(f'repro_machine_cycles_total{{opcode="'
                         f'{_escape_label(opcode)}"}} {stats["cycles"]}')
    if telemetry is not None:
        lines.extend(machine_metric_lines(telemetry))
    return "\n".join(lines) + "\n"


def write_metrics(path: str, diagnostics_list: Sequence[Any],
                  profile: Optional[Mapping[str, Any]] = None,
                  telemetry: Any = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_metrics(diagnostics_list, profile,
                                        telemetry))


# ---------------------------------------------------------------------------
# strict Prometheus text parsing (tests / CI validation)

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^(?P<name>{_METRIC_NAME})"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$")
_LABEL_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
    r"(?:,(?P<rest>.+))?$")
#: Sample-name suffixes a histogram family implicitly declares.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _unescape_label(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"') \
        .replace("\\\\", "\\")


def _parse_labels(blob: str, line_number: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    rest: Optional[str] = blob
    while rest:
        match = _LABEL_RE.match(rest)
        if match is None:
            raise ValueError(f"line {line_number}: malformed label set "
                             f"{blob!r}")
        labels[match.group("name")] = _unescape_label(match.group("value"))
        rest = match.group("rest")
    return labels


def _family_of(name: str, families: Mapping[str, Dict[str, Any]]
               ) -> Optional[str]:
    if name in families:
        return name
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            family = name[:-len(suffix)]
            if families.get(family, {}).get("type") == "histogram":
                return family
    return None


def parse_prometheus_text(text: str) -> Dict[str, Any]:
    """Strictly parse a Prometheus text exposition document.

    Every non-comment line must be a well-formed sample whose name belongs
    to a family already declared by a ``# TYPE`` line (histogram families
    implicitly declare their ``_bucket``/``_sum``/``_count`` samples);
    values must parse as floats.  Raises :class:`ValueError` naming the
    offending line otherwise -- the point is that tests and CI validate
    the whole document structurally instead of grepping for substrings.

    Returns ``{"families": {name: {"help", "type"}}, "samples": [{"name",
    "family", "labels", "value"}]}`` in document order.
    """
    families: Dict[str, Dict[str, Any]] = {}
    samples: List[Dict[str, Any]] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                if not re.fullmatch(_METRIC_NAME, name):
                    raise ValueError(f"line {line_number}: bad metric name "
                                     f"{name!r} in {parts[1]} line")
                entry = families.setdefault(name,
                                            {"help": None, "type": None})
                if parts[1] == "HELP":
                    entry["help"] = parts[3] if len(parts) > 3 else ""
                else:
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in ("counter", "gauge", "histogram",
                                    "summary", "untyped"):
                        raise ValueError(f"line {line_number}: unknown "
                                         f"metric type {kind!r}")
                    entry["type"] = kind
            continue  # other comments are legal and ignored
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample "
                             f"{line!r}")
        name = match.group("name")
        family = _family_of(name, families)
        if family is None or families[family]["type"] is None:
            raise ValueError(f"line {line_number}: sample {name!r} has no "
                             f"preceding # TYPE declaration")
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            if raw_value == "+Inf":
                value = float("inf")
            elif raw_value == "-Inf":
                value = float("-inf")
            else:
                raise ValueError(f"line {line_number}: bad sample value "
                                 f"{raw_value!r}")
        labels = _parse_labels(match.group("labels") or "", line_number)
        samples.append({"name": name, "family": family, "labels": labels,
                        "value": value})
    return {"families": families, "samples": samples}


def metric_value(parsed: Mapping[str, Any], name: str,
                 labels: Optional[Mapping[str, str]] = None
                 ) -> Optional[float]:
    """The value of the (first) sample matching *name* and exactly
    *labels* (``None`` matches only a label-free sample); ``None`` when
    absent."""
    want = dict(labels or {})
    for sample in parsed["samples"]:
        if sample["name"] == name and sample["labels"] == want:
            return sample["value"]
    return None
