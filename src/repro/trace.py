"""Trace exporters: Chrome trace-event JSON and Prometheus text metrics.

The diagnostics layer (PR 2) records *what* each compilation did --
per-phase wall-clock spans (now with ``started_s`` start stamps), rewrite
transcript entries (with ``at_s`` stamps on the same ``perf_counter``
clock), counters, and messages.  This module turns those records into two
standard observability formats:

* :func:`build_chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  trace-event JSON format (the ``{"traceEvents": [...]}`` flavor), loadable
  in Perfetto / ``chrome://tracing``.  Phases become complete spans
  (``"ph": "X"``), rewrites and counters become instant events
  (``"ph": "i"``), and every compilation source gets its own pid/tid track
  (the batch driver passes one track per worker process).  Because
  ``perf_counter`` epochs differ across processes, timestamps are
  normalized per track to a zero base.

* :func:`prometheus_metrics` / :func:`write_metrics` -- a Prometheus text
  exposition dump of phase seconds, rule firings, and counters, for diffing
  runs or scraping from CI artifacts.

Both accept :class:`repro.diagnostics.Diagnostics` objects or their
``to_json()`` dicts (the batch driver ships the latter across the process
boundary).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: One trace source: (diagnostics | diagnostics-json, pid, tid, label).
TraceEntry = Tuple[Any, int, int, str]


def _as_json(diagnostics: Any) -> Mapping[str, Any]:
    if hasattr(diagnostics, "to_json"):
        return diagnostics.to_json()
    return diagnostics


def _entry_events(diagnostics: Any, pid: int, tid: int, label: str
                  ) -> List[Dict[str, Any]]:
    """Raw events for one compilation, ts/dur still in perf_counter
    *seconds* (the builder converts to normalized microseconds)."""
    data = _as_json(diagnostics)
    events: List[Dict[str, Any]] = []
    phases = [p for p in data.get("phases", ())
              if p.get("started_s") is not None]
    if not phases:
        return events
    start = min(p["started_s"] for p in phases)
    end = max(p["started_s"] + p.get("duration_s", 0.0) for p in phases)
    # The enclosing compile span guarantees every phase nests inside it
    # (tnbind runs *inside* the codegen wall-clock window, so sibling
    # phase spans may overlap; the parent is the containment invariant).
    events.append({
        "name": label or "compile", "cat": "compile", "ph": "X",
        "ts": start, "dur": max(end - start, 0.0), "pid": pid, "tid": tid,
    })
    for record in phases:
        events.append({
            "name": record["phase"], "cat": "phase", "ph": "X",
            "ts": record["started_s"],
            "dur": max(record.get("duration_s", 0.0), 0.0),
            "pid": pid, "tid": tid,
            "args": {
                "function": record.get("function", ""),
                "nodes_before": record.get("nodes_before"),
                "nodes_after": record.get("nodes_after"),
            },
        })
    for rewrite in data.get("rewrites", ()):
        at = rewrite.get("at_s")
        if at is None:
            continue
        events.append({
            "name": rewrite.get("rule", "rewrite"), "cat": "rewrite",
            "ph": "i", "s": "t",
            "ts": min(max(at, start), end), "pid": pid, "tid": tid,
            "args": {"seq": rewrite.get("seq"),
                     "phase": rewrite.get("phase"),
                     "before": rewrite.get("before"),
                     "after": rewrite.get("after")},
        })
    for counter, value in sorted(data.get("counters", {}).items()):
        events.append({
            "name": counter, "cat": "counter", "ph": "i", "s": "t",
            "ts": end, "pid": pid, "tid": tid,
            "args": {"value": value},
        })
    return events


def build_chrome_trace(entries: Iterable[TraceEntry]) -> Dict[str, Any]:
    """Assemble the trace dict from (diagnostics, pid, tid, label) tuples.

    Timestamps are normalized per (pid, tid) track to a zero base and
    converted to microseconds (the format's unit), so tracks recorded on
    different process clocks line up at the origin.
    """
    events: List[Dict[str, Any]] = []
    track_labels: Dict[Tuple[int, int], str] = {}
    for diagnostics, pid, tid, label in entries:
        events.extend(_entry_events(diagnostics, pid, tid, label))
        track_labels.setdefault((pid, tid), label)
    bases: Dict[Tuple[int, int], float] = {}
    for event in events:
        track = (event["pid"], event["tid"])
        ts = event["ts"]
        if track not in bases or ts < bases[track]:
            bases[track] = ts
    for event in events:
        base = bases[(event["pid"], event["tid"])]
        event["ts"] = round((event["ts"] - base) * 1e6, 3)
        if "dur" in event:
            event["dur"] = round(event["dur"] * 1e6, 3)
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    metadata: List[Dict[str, Any]] = []
    for (pid, tid), label in sorted(track_labels.items()):
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "ts": 0, "args": {"name": label or f"track {pid}:{tid}"},
        })
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, entries: Iterable[TraceEntry]) -> int:
    """Write the Chrome trace JSON; returns the number of trace events."""
    trace = build_chrome_trace(entries)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, default=str)
        handle.write("\n")
    return len(trace["traceEvents"])


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def new_metric_totals() -> Dict[str, Any]:
    """An empty running-totals accumulator for
    :func:`merge_diagnostics_totals` / :func:`prometheus_from_totals`.
    The compile daemon keeps one of these alive for its whole run instead
    of retaining every compilation's diagnostics."""
    return {"compilations": 0, "phase_seconds": {}, "rule_fires": {},
            "counters": {}}


def merge_diagnostics_totals(totals: Dict[str, Any],
                             diagnostics: Any) -> Dict[str, Any]:
    """Fold one compilation's diagnostics (object or ``to_json()`` dict)
    into a running *totals* accumulator; returns *totals*."""
    data = _as_json(diagnostics)
    totals["compilations"] += 1
    phase_seconds = totals["phase_seconds"]
    for record in data.get("phases", ()):
        phase = record["phase"]
        phase_seconds[phase] = phase_seconds.get(phase, 0.0) \
            + record.get("duration_s", 0.0)
    rule_fires = totals["rule_fires"]
    for rule, count in data.get("rule_fires", {}).items():
        rule_fires[rule] = rule_fires.get(rule, 0) + count
    counters = totals["counters"]
    for counter, value in data.get("counters", {}).items():
        counters[counter] = counters.get(counter, 0) + value
    return totals


def prometheus_metrics(diagnostics_list: Sequence[Any],
                       profile: Optional[Mapping[str, Any]] = None) -> str:
    """Render phase seconds, rule firings, counters (summed over the given
    compilations), plus optional machine-profile gauges, in the Prometheus
    text exposition format."""
    totals = new_metric_totals()
    for diagnostics in diagnostics_list:
        merge_diagnostics_totals(totals, diagnostics)
    return prometheus_from_totals(totals, profile)


def prometheus_from_totals(totals: Mapping[str, Any],
                           profile: Optional[Mapping[str, Any]] = None
                           ) -> str:
    """Render an already-aggregated totals accumulator (see
    :func:`new_metric_totals`) in the Prometheus text format."""
    phase_seconds = totals["phase_seconds"]
    rule_fires = totals["rule_fires"]
    counters = totals["counters"]
    compilations = totals["compilations"]
    lines = [
        "# HELP repro_compilations_total Compilations measured in this dump.",
        "# TYPE repro_compilations_total counter",
        f"repro_compilations_total {compilations}",
        "# HELP repro_phase_seconds_total Wall-clock seconds per "
        "Table 1 phase.",
        "# TYPE repro_phase_seconds_total counter",
    ]
    for phase in sorted(phase_seconds):
        lines.append(f'repro_phase_seconds_total{{phase="'
                     f'{_escape_label(phase)}"}} {phase_seconds[phase]:.9f}')
    lines.append("# HELP repro_rule_fires_total Optimizer/peephole rule "
                 "firings.")
    lines.append("# TYPE repro_rule_fires_total counter")
    for rule in sorted(rule_fires):
        lines.append(f'repro_rule_fires_total{{rule="'
                     f'{_escape_label(rule)}"}} {rule_fires[rule]}')
    lines.append("# HELP repro_events_total Event counters (cache, batch).")
    lines.append("# TYPE repro_events_total counter")
    for counter in sorted(counters):
        lines.append(f'repro_events_total{{counter="'
                     f'{_escape_label(counter)}"}} {counters[counter]}')
    if profile:
        lines.append("# HELP repro_machine_cycles_total Simulated cycles "
                     "by opcode (exact profile).")
        lines.append("# TYPE repro_machine_cycles_total counter")
        for opcode in sorted(profile.get("opcodes", {})):
            stats = profile["opcodes"][opcode]
            lines.append(f'repro_machine_cycles_total{{opcode="'
                         f'{_escape_label(opcode)}"}} {stats["cycles"]}')
    return "\n".join(lines) + "\n"


def write_metrics(path: str, diagnostics_list: Sequence[Any],
                  profile: Optional[Mapping[str, Any]] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_metrics(diagnostics_list, profile))
