"""The CLI: ``python -m repro [repl|batch|fuzz|serve|client]``.

Every subcommand shares one parent parser (``--cache-dir``, ``--trace``,
``--metrics``, ``--verify``, ``--target``, ``--tier``, ``--jobs``) and
drives the compiler through the :class:`repro.api.CompilerService` facade
-- the same object the daemon serves over its wire protocol.

``repl`` (the default) is a compile-and-go REPL: each expression is
compiled through the full Table 1 pipeline and executed on the simulated
S-1.  ``defun``/``defvar`` forms extend the session.

Meta commands::

    :listing NAME     show a function's parenthesized assembly
    :transcript NAME  show the optimizer transcript for a function
    :trace NAME       show each rewrite as a whole-function unified diff
    :source NAME      show the optimized (back-translated) source
    :stats            cumulative machine statistics for this session
    :profile          exact execution profile (per-opcode / function / line)
    :hot              telemetry hot spots: top blocks/opcodes by fallback
                      cycles, coldest inline-cache sites
    :tier [TIER]      show or switch the execution tier (simulate, native)
    :timing [MODEL]   show or switch the timing model (single, pipelined)
    :backend [B]      show or switch the optimizer backend (ordered, egraph)
    :phases           the phase pipeline of the last compilation
    :diag             phase timings / rule fires / warnings (last compile)
    :prelude          load the bundled standard library
    :quit             leave

Batch mode (``python -m repro batch``) compiles many files across a worker
pool -- or a running daemon -- with an optional shared cache::

    python -m repro batch src1.lisp src2.lisp --jobs 4 --cache-dir .repro-cache
    python -m repro batch lib/*.lisp --target vax --json report.json
    python -m repro batch examples/*.lisp --server .repro.sock

Serve mode (``python -m repro serve``) starts the long-lived compile
daemon (unix socket JSON lines + optional HTTP with /metrics)::

    python -m repro serve --socket .repro.sock --cache-dir .repro-cache
    python -m repro serve --socket .repro.sock --http 127.0.0.1:8787 --jobs 4

Client mode (``python -m repro client``) talks to it::

    python -m repro client --server .repro.sock --ping
    python -m repro client examples/*.lisp --server .repro.sock

Fuzz mode (``python -m repro fuzz``) drives the seeded program generator
through verify-enabled compilation plus an interpreter==compiled
differential check::

    python -m repro fuzz --seed 0 --count 100
    python -m repro fuzz --seed 7 --count 50 --target vax

``--verify`` (any subcommand) turns on the phase-boundary IR sanitizer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .api import CompilerService
from .datum import Cons, sym
from .errors import ReproError
from .machine import Machine, TIERS, TIMINGS
from .options import OPTIMIZER_BACKENDS, CompilerOptions
from .reader import read_all, write_to_string

#: Subcommand names; anything else routes to the REPL (the historical
#: default invocation).
SUBCOMMANDS = ("repl", "batch", "fuzz", "serve", "client")


def common_parser(jobs_default: int = 1) -> argparse.ArgumentParser:
    """The shared parent parser: the flags every subcommand accepts with
    one spelling and one help text (``parents=[common_parser()]``)."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("common options")
    group.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="content-addressed compilation cache directory "
                            "(shared across workers, runs, and the daemon)")
    group.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON on exit "
                            "(open in Perfetto / chrome://tracing)")
    group.add_argument("--metrics", default=None, metavar="PATH",
                       help="write a Prometheus text metrics dump on exit")
    group.add_argument("--machine-trace", default=None, metavar="PATH",
                       help="write a Chrome trace of machine execution "
                            "telemetry on exit (run spans, GC pauses, "
                            "heap occupancy; open in Perfetto)")
    group.add_argument("--verify", action="store_true",
                       help="run the phase-boundary IR sanitizer "
                            "(repro.verify) after every compiler phase")
    group.add_argument("--target", action="append", default=None,
                       metavar="T",
                       help="machine description: s1, vax, pdp10 "
                            "(repeatable for fuzz; last wins elsewhere; "
                            "default s1)")
    group.add_argument("--tier", action="append", default=None,
                       metavar="TIER",
                       help="execution tier: simulate, native "
                            "(repeatable for fuzz; last wins elsewhere; "
                            "default simulate)")
    group.add_argument("--backend", action="append", default=None,
                       metavar="B",
                       help="optimizer backend: ordered, egraph "
                            "(repeatable for fuzz A/B sweeps; last wins "
                            "elsewhere; default ordered)")
    group.add_argument("--timing", action="append", default=None,
                       metavar="MODEL",
                       help="machine timing model: single, pipelined "
                            "(repeatable for fuzz parity sweeps; last "
                            "wins elsewhere; default single)")
    group.add_argument("--jobs", type=int, default=jobs_default,
                       metavar="N",
                       help="workers: pool size (batch/serve) or "
                            "concurrent connections (client) "
                            f"(default {jobs_default})")
    return parent


def _target_of(args: argparse.Namespace, default: str = "s1") -> str:
    targets = getattr(args, "target", None)
    return targets[-1] if targets else default


def _tier_of(args: argparse.Namespace, default: str = "simulate") -> str:
    tiers = getattr(args, "tier", None)
    return tiers[-1] if tiers else default


def _backend_of(args: argparse.Namespace, default: str = "ordered") -> str:
    backends = getattr(args, "backend", None)
    return backends[-1] if backends else default


def _timing_of(args: argparse.Namespace, default: str = "single") -> str:
    timings = getattr(args, "timing", None)
    return timings[-1] if timings else default


class Repl:
    def __init__(self, options: Optional[CompilerOptions] = None,
                 out=sys.stdout,
                 service: Optional[CompilerService] = None):
        # The REPL is interactive: full observability (transcript entries
        # plus whole-function rewrite snapshots) is worth the cost.
        self.service = service or CompilerService(
            options or CompilerOptions(transcript=True,
                                       trace_rewrites=True))
        self.compiler = self.service.session()
        self.machine: Optional[Machine] = None
        self.out = out
        self._counter = 0
        #: to_json() of every compilation this session, in order (dumped by
        #: --diagnostics-json).
        self.diagnostics_log: List[Dict[str, Any]] = []

    def _session_machine(self) -> Machine:
        """Keep one session machine so specials persist between entries;
        new definitions only swap in the updated program."""
        if self.machine is None:
            self.machine = self.compiler.machine()
            # Exact profiling is on for the whole session so :profile can
            # answer at any point (simulator-side cost only); telemetry
            # likewise, so :hot and --machine-trace always have data.
            self.machine.enable_profiling()
            self.machine.enable_telemetry()
        else:
            self.machine.program = self.compiler.program
        return self.machine

    def _define_on_session_machine(self, names) -> None:
        """Make newly compiled definitions visible to the live machine
        without rebuilding it (a rebuild would reset every special set by
        earlier entries)."""
        if self.machine is None:
            return
        self.machine.program = self.compiler.program
        for name in names:
            if name in self.compiler.global_values:
                self.machine.define_global(
                    name, self.compiler.global_values[name])

    def _log_diagnostics(self, entry: str) -> None:
        diagnostics = self.compiler.last_diagnostics
        if diagnostics is not None:
            self.diagnostics_log.append(
                {"entry": entry, "diagnostics": diagnostics.to_json()})

    def _say(self, text: str) -> None:
        print(text, file=self.out)

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the session ends."""
        line = line.strip()
        if not line:
            return True
        if line.startswith(":"):
            return self._meta(line)
        try:
            self._evaluate(line)
        except ReproError as err:
            self._say(f"error: {err}")
        return True

    def _evaluate(self, text: str) -> None:
        forms = read_all(text)
        for form in forms:
            if isinstance(form, Cons) and form.car in (sym("defun"),
                                                       sym("defvar"),
                                                       sym("defparameter")):
                name = self.compiler.compile_form(form)
                self._log_diagnostics(text)
                self._define_on_session_machine([name])
                self._say(str(name))
                continue
            self._counter += 1
            entry = f"*entry-{self._counter}*"
            self.compiler.compile_expression(write_to_string(form),
                                             name=entry)
            self._log_diagnostics(text)
            machine = self._session_machine()
            value = machine.run(sym(entry), [])
            self._say(write_to_string(value))

    def _meta(self, line: str) -> bool:
        parts = line.split()
        command = parts[0]
        if command in (":quit", ":q", ":exit"):
            return False
        if command == ":prelude":
            names = self.compiler.load_prelude()
            self._log_diagnostics(":prelude")
            self._define_on_session_machine(names)
            self._say(f"loaded {len(names)} prelude functions")
            return True
        if command == ":stats":
            if self.machine is None:
                self._say("(nothing run yet)")
            else:
                stats = self.machine.stats()
                for key in ("instructions", "cycles", "calls", "max_stack",
                            "total_heap_allocations", "certifications"):
                    self._say(f"  {key}: {stats[key]}")
            return True
        if command == ":profile":
            if self.machine is None:
                self._say("(nothing run yet)")
            else:
                self._say(self.machine.profile_report())
            return True
        if command == ":hot":
            if self.machine is None or self.machine.telemetry is None:
                self._say("(nothing run yet)")
            else:
                self._say(self.machine.telemetry.hot_report())
            return True
        if command == ":tier":
            if len(parts) == 1:
                self._say(f"tier: {self.compiler.options.tier}")
            elif parts[1] in TIERS:
                self.compiler.options.tier = parts[1]
                if self.machine is not None:
                    self.machine.tier = parts[1]
                self._say(f"tier: {parts[1]}")
            else:
                self._say(f"unknown tier: {parts[1]} "
                          f"(choose from {', '.join(TIERS)})")
            return True
        if command == ":timing":
            if len(parts) == 1:
                self._say(f"timing: {self.compiler.options.timing}")
            elif parts[1] in TIMINGS:
                # Non-semantic: the session machine switches models in
                # place (its native/timing caches drop); results and
                # instruction counts are unchanged, only cycles differ.
                self.compiler.options.timing = parts[1]
                if self.machine is not None:
                    self.machine.set_timing(parts[1])
                self._say(f"timing: {parts[1]}")
            else:
                self._say(f"unknown timing model: {parts[1]} "
                          f"(choose from {', '.join(TIMINGS)})")
            return True
        if command == ":backend":
            if len(parts) == 1:
                self._say("backend: "
                          f"{self.compiler.options.optimizer_backend}")
            elif parts[1] in OPTIMIZER_BACKENDS:
                # Semantic option: only *future* compiles change; already
                # compiled functions keep the code they have.
                self.compiler.options.optimizer_backend = parts[1]
                self._say(f"backend: {parts[1]}")
            else:
                self._say(f"unknown backend: {parts[1]} "
                          f"(choose from {', '.join(OPTIMIZER_BACKENDS)})")
            return True
        if command == ":phases":
            self._say(self.compiler.phase_report())
            return True
        if command == ":diag":
            diagnostics = self.compiler.last_diagnostics
            if diagnostics is None:
                self._say("(nothing compiled yet)")
            else:
                self._say(diagnostics.report())
            return True
        if command in (":listing", ":transcript", ":trace", ":source") \
                and len(parts) == 2:
            name = sym(parts[1])
            compiled = self.compiler.functions.get(name)
            if compiled is None:
                self._say(f"no such function: {parts[1]}")
                return True
            if command == ":listing":
                self._say(compiled.listing())
            elif command == ":transcript":
                self._say(compiled.transcript.render() or "(no entries)")
            elif command == ":trace":
                self._say(compiled.transcript.render_diffs()
                          or "(no rewrites recorded)")
            else:
                self._say(compiled.optimized_source)
            return True
        self._say(f"unknown command: {line}")
        return True

    def dump_diagnostics(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"session": self.diagnostics_log}, handle, indent=2)

    def trace_entries(self):
        """(diagnostics, pid, tid, label) tuples for the trace exporter:
        the whole session on one track, one compile span per entry."""
        return [(record["diagnostics"], 0, 0, record["entry"])
                for record in self.diagnostics_log]

    def dump_trace(self, path: str) -> None:
        from .trace import write_chrome_trace

        write_chrome_trace(path, self.trace_entries())

    def dump_metrics(self, path: str) -> None:
        from .trace import write_metrics

        profile = self.machine.profile_data() \
            if self.machine is not None else None
        telemetry = self.machine.telemetry_data() \
            if self.machine is not None else None
        write_metrics(path, [record["diagnostics"]
                             for record in self.diagnostics_log], profile,
                      telemetry)

    def dump_machine_trace(self, path: str) -> None:
        from .telemetry import MachineTelemetry
        from .trace import write_machine_trace

        telemetry = self.machine.telemetry_data() \
            if self.machine is not None else None
        write_machine_trace(path, telemetry if telemetry is not None
                            else MachineTelemetry())


def batch_main(argv) -> int:
    """``python -m repro batch FILE... [--jobs N] [--cache-dir PATH]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro batch",
        parents=[common_parser()],
        description="Compile many source files across a worker pool -- or "
                    "a running daemon (--server) -- with an optional "
                    "shared content-addressed compilation cache.")
    parser.add_argument("files", nargs="+", metavar="FILE",
                        help="Lisp source files to compile")
    parser.add_argument("--server", default=None, metavar="ADDR",
                        help="ship work to a running daemon at this "
                             "address (unix socket path or "
                             "http://host:port) instead of spawning a "
                             "local pool")
    parser.add_argument("--prelude", action="store_true",
                        help="load the bundled standard library into every "
                             "worker compiler first")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the full batch report as JSON")
    parser.add_argument("--trace-rewrites", action="store_true",
                        help="capture whole-function before/after source "
                             "per optimizer rewrite (slower)")
    args = parser.parse_args(argv)

    options = CompilerOptions(target=_target_of(args),
                              tier=_tier_of(args),
                              timing=_timing_of(args),
                              optimizer_backend=_backend_of(args),
                              trace_rewrites=args.trace_rewrites,
                              verify_ir=args.verify)
    service = CompilerService(options=options)
    result = service.batch(
        args.files, jobs=args.jobs, cache_dir=args.cache_dir,
        load_prelude=args.prelude, server=args.server,
        want_diagnostics=bool(args.trace or args.metrics or args.json))
    print(result.report())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(result.to_json(), handle, indent=2)
    if args.trace:
        from .trace import write_chrome_trace

        count = write_chrome_trace(args.trace, result.trace_entries())
        print(f"trace: wrote {count} event(s) to {args.trace}")
    if args.metrics:
        from .trace import write_metrics

        write_metrics(args.metrics,
                      [f.diagnostics for f in result.files
                       if f.diagnostics is not None])
    if args.machine_trace:
        # Batch only compiles -- the execution track is empty, but the
        # file is still a valid trace so tooling can treat the flag
        # uniformly across subcommands.
        from .telemetry import MachineTelemetry
        from .trace import write_machine_trace

        write_machine_trace(args.machine_trace, MachineTelemetry())
        print(f"machine trace: wrote {args.machine_trace} (batch executes "
              f"nothing; execution track is empty)")
    return 0 if result.error_count == 0 else 1


def fuzz_main(argv) -> int:
    """``python -m repro fuzz --seed N --count K [--target T]...``"""
    from .fuzz import ALL_TARGETS, run_fuzz

    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        parents=[common_parser()],
        description="Drive the seeded program generator through "
                    "verify-enabled compilation plus an "
                    "interpreter==compiled differential check.")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="base seed; program i uses seed N+i "
                             "(default 0)")
    parser.add_argument("--count", type=int, default=50, metavar="K",
                        help="number of programs to generate (default 50)")
    parser.add_argument("--max-depth", type=int, default=4, metavar="D",
                        help="maximum expression nesting depth (default 4)")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the phase-boundary IR sanitizer (keep "
                             "only the differential check)")
    parser.add_argument("--cse", action="store_true",
                        help="also enable common subexpression elimination")
    parser.add_argument("--peephole", action="store_true",
                        help="also enable the peephole optimizer")
    parser.add_argument("--bench-json", default=None, metavar="PATH",
                        help="where to write the backend A/B cycle-delta "
                             "report (default benchmarks/BENCH_egraph.json "
                             "when more than one --backend is given)")
    parser.add_argument("--telemetry", action="store_true",
                        help="run every machine with execution telemetry "
                             "on and assert cycle conservation per run "
                             "(implied by --machine-trace)")
    args = parser.parse_args(argv)

    targets = tuple(args.target or ALL_TARGETS)
    unknown = [t for t in targets if t not in ALL_TARGETS]
    if unknown:
        parser.error(f"unknown target(s): {', '.join(unknown)} "
                     f"(choose from {', '.join(ALL_TARGETS)})")
    tiers = tuple(args.tier or TIERS)
    unknown = [t for t in tiers if t not in TIERS]
    if unknown:
        parser.error(f"unknown tier(s): {', '.join(unknown)} "
                     f"(choose from {', '.join(TIERS)})")
    backends = tuple(args.backend or ("ordered",))
    unknown = [b for b in backends if b not in OPTIMIZER_BACKENDS]
    if unknown:
        parser.error(f"unknown backend(s): {', '.join(unknown)} "
                     f"(choose from {', '.join(OPTIMIZER_BACKENDS)})")
    timings = tuple(args.timing or ("single",))
    unknown = [m for m in timings if m not in TIMINGS]
    if unknown:
        parser.error(f"unknown timing model(s): {', '.join(unknown)} "
                     f"(choose from {', '.join(TIMINGS)})")

    options = CompilerOptions(enable_cse=args.cse,
                              enable_peephole=args.peephole)
    want_telemetry = bool(args.telemetry or args.machine_trace)
    report = run_fuzz(base_seed=args.seed, count=args.count,
                      targets=targets, tiers=tiers,
                      verify=not args.no_verify, options=options,
                      max_depth=args.max_depth, backends=backends,
                      timings=timings, telemetry=want_telemetry)
    print(report.render())
    bench_path = args.bench_json
    if bench_path is None and len(backends) > 1:
        import os

        # The canonical home for bench artifacts is benchmarks/ -- a bare
        # BENCH_*.json at the repo root is a stray (and .gitignored).
        bench_path = os.path.join("benchmarks", "BENCH_egraph.json")
        os.makedirs("benchmarks", exist_ok=True)
    if bench_path is not None and len(backends) > 1:
        with open(bench_path, "w", encoding="utf-8") as handle:
            json.dump(report.bench_json(), handle, indent=2)
        print(f"backend A/B report: {bench_path}")
    if args.machine_trace and report.telemetry is not None:
        from .trace import write_machine_trace

        count = write_machine_trace(args.machine_trace,
                                    report.telemetry["merged"])
        print(f"machine trace: wrote {count} event(s) to "
              f"{args.machine_trace}")
    return 0 if report.ok else 1


def serve_main(argv) -> int:
    """``python -m repro serve --socket PATH [--http HOST:PORT]``."""
    from .serve import ReproServer

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        parents=[common_parser()],
        description="Start the long-lived compile daemon: unix-socket "
                    "JSON lines and/or HTTP (POST / for the api, GET "
                    "/metrics for Prometheus).  Warm per-worker caches "
                    "over the shared --cache-dir store; bounded queue "
                    "with busy responses past --max-queue; graceful "
                    "drain on SIGTERM/SIGINT or a shutdown op.")
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="unix socket to listen on (default "
                             ".repro.sock when no --http is given)")
    parser.add_argument("--http", default=None, metavar="HOST:PORT",
                        help="also serve HTTP on this address")
    parser.add_argument("--max-queue", type=int, default=8, metavar="N",
                        help="max requests waiting for a worker before "
                             "new ones get an immediate busy response "
                             "(default 8)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        metavar="SECONDS",
                        help="per-request timeout (default 120)")
    parser.add_argument("--max-request-bytes", type=int,
                        default=None, metavar="N",
                        help="largest accepted request (socket line or "
                             "HTTP body; default 64 MiB); oversized "
                             "requests get a structured too-large / "
                             "413 answer")
    args = parser.parse_args(argv)

    socket_path = args.socket
    http_addr = None
    if args.http is not None:
        host, _, port = args.http.rpartition(":")
        try:
            http_addr = (host or "127.0.0.1", int(port))
        except ValueError:
            parser.error(f"--http wants HOST:PORT, got {args.http!r}")
    if socket_path is None and http_addr is None:
        socket_path = ".repro.sock"

    options = CompilerOptions(target=_target_of(args),
                              tier=_tier_of(args),
                              timing=_timing_of(args),
                              optimizer_backend=_backend_of(args),
                              verify_ir=args.verify)
    extra = {}
    if args.max_request_bytes is not None:
        extra["max_request_bytes"] = args.max_request_bytes
    server = ReproServer(options,
                         socket_path=socket_path,
                         http_addr=http_addr,
                         cache_dir=args.cache_dir,
                         jobs=args.jobs,
                         max_queue=args.max_queue,
                         request_timeout=args.timeout,
                         **extra)
    return server.run()


def repl_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        parents=[common_parser()],
        description="Compile-and-go REPL for the S-1 Lisp compiler "
                    "reproduction.  (See also: python -m repro batch / "
                    "fuzz / serve / client, each with --help.)")
    parser.add_argument(
        "--diagnostics-json", metavar="PATH", default=None,
        help="write per-compilation phase timings, rule-fire counters, and "
             "warnings to PATH (JSON) when the session ends")
    args = parser.parse_args(argv)

    print("repro: the S-1 Lisp compiler reproduction "
          "(:quit to leave, :prelude for the library)")
    repl = Repl(CompilerOptions(transcript=True, trace_rewrites=True,
                                verify_ir=args.verify,
                                target=_target_of(args),
                                tier=_tier_of(args),
                                timing=_timing_of(args),
                                optimizer_backend=_backend_of(args),
                                cache=args.cache_dir))
    try:
        while True:
            try:
                line = input("s1> ")
            except (EOFError, KeyboardInterrupt):
                print()
                return 0
            if not repl.handle(line):
                return 0
    finally:
        if args.diagnostics_json:
            repl.dump_diagnostics(args.diagnostics_json)
        if args.trace:
            repl.dump_trace(args.trace)
        if args.metrics:
            repl.dump_metrics(args.metrics)
        if args.machine_trace:
            repl.dump_machine_trace(args.machine_trace)


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in SUBCOMMANDS:
        name, rest = argv[0], argv[1:]
    else:
        name, rest = "repl", argv
    if name == "batch":
        return batch_main(rest)
    if name == "fuzz":
        return fuzz_main(rest)
    if name == "serve":
        return serve_main(rest)
    if name == "client":
        from .client import client_main

        return client_main(rest, parents=[common_parser()])
    return repl_main(rest)


if __name__ == "__main__":
    raise SystemExit(main())
