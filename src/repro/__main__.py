"""A compile-and-go REPL for the reproduction: ``python -m repro``.

Each expression is compiled through the full Table 1 pipeline and executed
on the simulated S-1.  ``defun``/``defvar`` forms extend the session.

Meta commands::

    :listing NAME     show a function's parenthesized assembly
    :transcript NAME  show the optimizer transcript for a function
    :source NAME      show the optimized (back-translated) source
    :stats            cumulative machine statistics for this session
    :phases           the phase pipeline of the last compilation
    :prelude          load the bundled standard library
    :quit             leave
"""

from __future__ import annotations

import sys
from typing import Optional

from . import Compiler, CompilerOptions
from .datum import Cons, sym, to_list
from .errors import ReproError
from .machine import Machine
from .reader import read_all, write_to_string


class Repl:
    def __init__(self, options: Optional[CompilerOptions] = None,
                 out=sys.stdout):
        self.compiler = Compiler(options or CompilerOptions(transcript=True))
        self.machine: Optional[Machine] = None
        self.out = out
        self._counter = 0

    def _fresh_machine(self) -> Machine:
        machine = self.compiler.machine()
        # Keep one session machine so specials persist between entries.
        return machine

    def _say(self, text: str) -> None:
        print(text, file=self.out)

    def handle(self, line: str) -> bool:
        """Process one input line; returns False when the session ends."""
        line = line.strip()
        if not line:
            return True
        if line.startswith(":"):
            return self._meta(line)
        try:
            self._evaluate(line)
        except ReproError as err:
            self._say(f"error: {err}")
        return True

    def _evaluate(self, text: str) -> None:
        forms = read_all(text)
        for form in forms:
            if isinstance(form, Cons) and form.car in (sym("defun"),
                                                       sym("defvar"),
                                                       sym("defparameter")):
                name = self.compiler.compile_form(form)
                self.machine = None  # program changed; rebuild lazily
                self._say(str(name))
                continue
            self._counter += 1
            entry = f"*entry-{self._counter}*"
            self.compiler.compile_expression(write_to_string(form),
                                             name=entry)
            if self.machine is None:
                self.machine = self._fresh_machine()
            else:
                self.machine.program = self.compiler.program
            value = self.machine.run(sym(entry), [])
            self._say(write_to_string(value))

    def _meta(self, line: str) -> bool:
        parts = line.split()
        command = parts[0]
        if command in (":quit", ":q", ":exit"):
            return False
        if command == ":prelude":
            names = self.compiler.load_prelude()
            self.machine = None
            self._say(f"loaded {len(names)} prelude functions")
            return True
        if command == ":stats":
            if self.machine is None:
                self._say("(nothing run yet)")
            else:
                stats = self.machine.stats()
                for key in ("instructions", "cycles", "calls", "max_stack",
                            "total_heap_allocations", "certifications"):
                    self._say(f"  {key}: {stats[key]}")
            return True
        if command == ":phases":
            self._say(self.compiler.phase_report())
            return True
        if command in (":listing", ":transcript", ":source") and len(parts) == 2:
            name = sym(parts[1])
            compiled = self.compiler.functions.get(name)
            if compiled is None:
                self._say(f"no such function: {parts[1]}")
                return True
            if command == ":listing":
                self._say(compiled.listing())
            elif command == ":transcript":
                self._say(compiled.transcript.render() or "(no entries)")
            else:
                self._say(compiled.optimized_source)
            return True
        self._say(f"unknown command: {line}")
        return True


def main(argv=None) -> int:
    print("repro: the S-1 Lisp compiler reproduction "
          "(:quit to leave, :prelude for the library)")
    repl = Repl()
    while True:
        try:
            line = input("s1> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not repl.handle(line):
            return 0


if __name__ == "__main__":
    raise SystemExit(main())
