"""Phase-level observability for the compiler pipeline.

Table 1 of the paper presents the compiler as a sequence of named phases,
and the Section 7 listings narrate what each phase did to the example
function.  This module is the measurement substrate for that story:

* :class:`Diagnostics` -- one per :meth:`repro.Compiler.compile` call --
  records wall-clock duration and IR node counts around every executed
  phase, per-rule fire counters (optimizer transcript + peephole stats),
  and structured warnings/errors carrying source locations,
* :class:`SourceLocation` -- the ``file:line:column`` triple the reader's
  tokens already track, now carried by :class:`repro.errors.ReproError`,
* :meth:`Diagnostics.report` renders a human-readable summary and
  :meth:`Diagnostics.to_json` a machine-readable dict (JSON-serializable,
  round-trippable via :meth:`Diagnostics.from_json`) so benchmark runs can
  emit ``BENCH_*.json`` phase-timing trajectories.

The module is deliberately dependency-free (stdlib only) so every other
package -- including :mod:`repro.errors` -- may import it without cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional

#: Canonical phase keys, in Table 1 pipeline order.  ``Diagnostics`` accepts
#: any phase name, but the compiler driver sticks to these.
TABLE1_PHASES = (
    "reader",
    "ir conversion",
    "analysis",
    "optimizer",
    "cse",
    "annotate",
    "tnbind",
    "codegen",
    "peephole",
)


@dataclass(frozen=True)
class SourceLocation:
    """A position in program text: ``file:line:column`` (1-based)."""

    line: int
    column: int
    file: str = "<input>"

    def __str__(self) -> str:
        return f"{self.file}:{self.line}:{self.column}"

    def to_json(self) -> Dict[str, Any]:
        return {"file": self.file, "line": self.line, "column": self.column}

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "SourceLocation":
        return cls(line=data["line"], column=data["column"],
                   file=data.get("file", "<input>"))


@dataclass
class PhaseRecord:
    """One executed phase: what it ran on, how long, and how the tree grew."""

    phase: str
    function: str = ""
    duration_s: float = 0.0
    nodes_before: Optional[int] = None
    nodes_after: Optional[int] = None
    #: ``time.perf_counter()`` when the phase began.  Lets the trace
    #: exporter place the phase as a span on a shared timeline (the same
    #: clock stamps transcript entries and cache events).
    started_s: Optional[float] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "function": self.function,
            "duration_s": self.duration_s,
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "started_s": self.started_s,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "PhaseRecord":
        return cls(phase=data["phase"], function=data.get("function", ""),
                   duration_s=data.get("duration_s", 0.0),
                   nodes_before=data.get("nodes_before"),
                   nodes_after=data.get("nodes_after"),
                   started_s=data.get("started_s"))


@dataclass
class DiagnosticMessage:
    """A structured warning or error, optionally source-located."""

    severity: str  # "warning" | "error"
    message: str
    phase: Optional[str] = None
    location: Optional[SourceLocation] = None

    def render(self) -> str:
        where = f"{self.location}: " if self.location is not None else ""
        tag = f" [{self.phase}]" if self.phase else ""
        return f"{self.severity}: {where}{self.message}{tag}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "severity": self.severity,
            "message": self.message,
            "phase": self.phase,
            "location": (self.location.to_json()
                         if self.location is not None else None),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "DiagnosticMessage":
        location = data.get("location")
        return cls(severity=data["severity"], message=data["message"],
                   phase=data.get("phase"),
                   location=(SourceLocation.from_json(location)
                             if location is not None else None))


class _PhaseTimer:
    """Handle returned by :meth:`Diagnostics.start_phase`; call
    :meth:`finish` when the phase completes to stamp the duration."""

    def __init__(self, diagnostics: "Diagnostics", record: PhaseRecord):
        self.record = record
        self._start = time.perf_counter()
        record.started_s = self._start
        self._done = False

    def finish(self, nodes_after: Optional[int] = None) -> PhaseRecord:
        if not self._done:
            self._done = True
            self.record.duration_s = time.perf_counter() - self._start
            if nodes_after is not None:
                self.record.nodes_after = nodes_after
        return self.record


class Diagnostics:
    """Everything one compilation reported about itself."""

    def __init__(self) -> None:
        self.phases: List[PhaseRecord] = []
        self.rule_fires: Dict[str, int] = {}
        self.messages: List[DiagnosticMessage] = []
        #: Free-form event counters (cache hits/misses/stores, batch worker
        #: tallies, ...) -- anything that is a count but not a rule firing.
        self.counters: Dict[str, int] = {}
        #: Rewrite-trace entries (``TranscriptEntry.to_json`` dicts) merged
        #: from the optimizer transcript; the trace exporter turns them
        #: into instant events on the compilation timeline.
        self.rewrites: List[Dict[str, Any]] = []

    # -- recording -----------------------------------------------------------

    def start_phase(self, phase: str, function: str = "",
                    nodes_before: Optional[int] = None) -> _PhaseTimer:
        """Begin timing *phase*; the record is appended immediately and
        completed by the returned timer's ``finish``."""
        record = PhaseRecord(phase=phase, function=function,
                             nodes_before=nodes_before)
        self.phases.append(record)
        return _PhaseTimer(self, record)

    def record_phase(self, phase: str, duration_s: float, function: str = "",
                     nodes_before: Optional[int] = None,
                     nodes_after: Optional[int] = None,
                     started_s: Optional[float] = None) -> PhaseRecord:
        """Append an externally measured phase (e.g. TNBIND, which runs
        inside the code generator)."""
        record = PhaseRecord(phase=phase, function=function,
                             duration_s=max(0.0, duration_s),
                             nodes_before=nodes_before,
                             nodes_after=nodes_after,
                             started_s=started_s)
        self.phases.append(record)
        return record

    def record_rules(self, counts: Mapping[str, int]) -> None:
        """Merge per-rule fire counters (optimizer transcript, peephole)."""
        for rule, count in counts.items():
            if count:
                self.rule_fires[rule] = self.rule_fires.get(rule, 0) + count

    def record_rewrites(self, entries: Iterable[Mapping[str, Any]]) -> None:
        """Append transcript-entry JSON dicts to the rewrite trace."""
        self.rewrites.extend(dict(entry) for entry in entries)

    def bump(self, counter: str, amount: int = 1) -> int:
        """Increment a named event counter; returns the new value."""
        value = self.counters.get(counter, 0) + amount
        self.counters[counter] = value
        return value

    def merge_counters(self, counts: Mapping[str, int]) -> None:
        for counter, amount in counts.items():
            if amount:
                self.bump(counter, amount)

    def warn(self, message: str, phase: Optional[str] = None,
             location: Optional[SourceLocation] = None) -> DiagnosticMessage:
        entry = DiagnosticMessage("warning", message, phase, location)
        self.messages.append(entry)
        return entry

    def error(self, message: str, phase: Optional[str] = None,
              location: Optional[SourceLocation] = None) -> DiagnosticMessage:
        entry = DiagnosticMessage("error", message, phase, location)
        self.messages.append(entry)
        return entry

    # -- queries -------------------------------------------------------------

    @property
    def warnings(self) -> List[DiagnosticMessage]:
        return [m for m in self.messages if m.severity == "warning"]

    @property
    def errors(self) -> List[DiagnosticMessage]:
        return [m for m in self.messages if m.severity == "error"]

    def phase_names(self) -> List[str]:
        """Executed phase keys, de-duplicated, in first-execution order."""
        seen: List[str] = []
        for record in self.phases:
            if record.phase not in seen:
                seen.append(record.phase)
        return seen

    def total_seconds(self) -> float:
        return sum(record.duration_s for record in self.phases)

    # -- rendering -----------------------------------------------------------

    def timing_lines(self) -> List[str]:
        lines = ["Phase timings:"]
        for record in self.phases:
            counts = ""
            if record.nodes_before is not None or record.nodes_after is not None:
                before = "?" if record.nodes_before is None else record.nodes_before
                after = "?" if record.nodes_after is None else record.nodes_after
                counts = f"  nodes {before} -> {after}"
            function = f" [{record.function}]" if record.function else ""
            lines.append(f"  {record.phase:<16} {record.duration_s * 1e3:9.3f} ms"
                         f"{counts}{function}")
        lines.append(f"  {'total':<16} {self.total_seconds() * 1e3:9.3f} ms")
        return lines

    def report(self) -> str:
        """Human-readable summary: timings, rule fires, messages."""
        if not self.phases and not self.rule_fires and not self.messages \
                and not self.counters:
            return "(no diagnostics recorded)"
        lines: List[str] = []
        if self.phases:
            lines.extend(self.timing_lines())
        if self.counters:
            lines.append("Counters:")
            for counter in sorted(self.counters):
                lines.append(f"  {self.counters[counter]:5d}  {counter}")
        if self.rule_fires:
            lines.append("Rule firings:")
            for rule, count in sorted(self.rule_fires.items(),
                                      key=lambda item: (-item[1], item[0])):
                lines.append(f"  {count:5d}  {rule}")
        if self.messages:
            lines.append("Messages:")
            for message in self.messages:
                lines.append(f"  {message.render()}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable dict of everything recorded."""
        return {
            "phases": [record.to_json() for record in self.phases],
            "rule_fires": dict(self.rule_fires),
            "counters": dict(self.counters),
            "messages": [message.to_json() for message in self.messages],
            "rewrites": [dict(entry) for entry in self.rewrites],
            "total_seconds": self.total_seconds(),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Diagnostics":
        diagnostics = cls()
        diagnostics.phases = [PhaseRecord.from_json(p)
                              for p in data.get("phases", ())]
        diagnostics.rule_fires = dict(data.get("rule_fires", {}))
        diagnostics.counters = dict(data.get("counters", {}))
        diagnostics.messages = [DiagnosticMessage.from_json(m)
                                for m in data.get("messages", ())]
        diagnostics.rewrites = [dict(entry)
                                for entry in data.get("rewrites", ())]
        return diagnostics


def count_nodes(root: Any) -> Optional[int]:
    """Size of an IR subtree (or anything exposing ``walk()``)."""
    walk = getattr(root, "walk", None)
    if walk is None:
        return None
    return sum(1 for _ in walk())
