"""Numeric Lisp, the paper's motivation: "many people have come to assume
that the inefficiency of LISP in performing numerical computation is
inherent in the language, rather than simply the result of lack of
attention in the implementations."

This example compiles three numeric kernels -- polynomial evaluation (the
MACSYMA-style workload), a dot product over vectors, and a Mandelbrot-style
escape iteration -- with the full optimizing pipeline, with the naive
configuration, and on the reference interpreter, and compares the work done.

Run:  python examples/numeric_kernels.py
"""

from repro import Compiler
from repro.baseline import CountingInterpreter, NaiveCompiler
from repro.datum import sym

KERNELS = {
    "poly-eval": ("""
        (defun poly-eval (x n)
          ;; Horner evaluation of 1 + x + x^2 + ... + x^n
          (declare (single-float x))
          (let ((acc 0.0))
            (dotimes (i n acc)
              (setq acc (+$f (*$f acc x) 1.0)))))
    """, "poly-eval", [0.5, 60]),

    "dot-product": ("""
        (defun fill-ramp (v n)
          (dotimes (i n v) (vset v i (float i))))
        (defun dot-product (n)
          (let ((a (fill-ramp (make-vector n 0.0) n))
                (b (fill-ramp (make-vector n 0.0) n))
                (sum 0.0))
            (dotimes (i n sum)
              (setq sum (+$f sum (*$f (vref a i) (vref b i)))))))
    """, "dot-product", [40]),

    "escape-iteration": ("""
        (defun escape (cx cy limit)
          ;; Count iterations of z <- z^2 + c before |z| > 2.
          (declare (single-float cx) (single-float cy))
          (let ((x 0.0) (y 0.0) (count 0))
            (prog ()
              loop
              (if (>= count limit) (return count))
              (if (>$f (+$f (*$f x x) (*$f y y)) 4.0) (return count))
              (let ((nx (+$f (-$f (*$f x x) (*$f y y)) cx))
                    (ny (+$f (*$f 2.0 (*$f x y)) cy)))
                (setq x nx)
                (setq y ny))
              (setq count (1+ count))
              (go loop))))
    """, "escape", [-0.1, 0.65, 80]),
}


def measure(compiler, source, fn, args):
    compiler.compile_source(source)
    machine = compiler.machine()
    result = machine.run(sym(fn), list(args))
    return result, machine.stats()


def main() -> None:
    header = (f"{'kernel':18s} {'configuration':12s} {'result':>12s} "
              f"{'cycles':>9s} {'instrs':>8s} {'heap allocs':>12s}")
    print(header)
    print("-" * len(header))
    for name, (source, fn, args) in KERNELS.items():
        rows = []
        result, stats = measure(Compiler(), source, fn, args)
        rows.append(("optimizing", result, stats))
        result, stats = measure(NaiveCompiler(), source, fn, args)
        rows.append(("naive", result, stats))
        interp = CountingInterpreter()
        result, steps = interp.run(source, fn, args)
        for config, res, stats in rows:
            shown = f"{res:.4f}" if isinstance(res, float) else str(res)
            print(f"{name:18s} {config:12s} {shown:>12s} "
                  f"{stats['cycles']:>9d} {stats['instructions']:>8d} "
                  f"{stats['total_heap_allocations']:>12d}")
        shown = f"{result:.4f}" if isinstance(result, float) else str(result)
        print(f"{name:18s} {'interpreter':12s} {shown:>12s} "
              f"{'(' + str(steps) + ' eval steps)':>31s}")
        print()

    print("The shape the paper claims: the optimizing compiler does the same")
    print("arithmetic with far fewer cycles and near-zero heap allocation --")
    print("representation analysis keeps floats raw, pdl numbers keep the")
    print("unavoidable boxes on the stack, TNBIND keeps temporaries in")
    print("registers, and tail-recursive loops are branches, not calls.")


if __name__ == "__main__":
    main()
