"""Quickstart: compile a Lisp function and run it on the simulated S-1.

Run:  python examples/quickstart.py
"""

from repro import Compiler, CompilerOptions
from repro.datum import sym


def main() -> None:
    # The compiler accepts ordinary defun forms.  This is the paper's
    # Section 2 example: tail-recursive exponentiation by repeated squaring.
    source = """
        (defun exptl (x n a)        ; compute a * x^n
          (cond ((zerop n) a)
                ((oddp n) (exptl (* x x) (floor (/ n 2)) (* a x)))
                (t (exptl (* x x) (floor (/ n 2)) a))))
    """

    compiler = Compiler(CompilerOptions(transcript=True))
    compiler.compile_source(source)

    # 1. What the optimizer did (source-to-source, back-translatable):
    compiled = compiler.functions[sym("exptl")]
    print("Optimized source:")
    print(" ", compiled.optimized_source)
    print()

    # 2. The generated parenthesized assembly:
    print(compiled.listing())
    print()

    # 3. Run it.  Tail recursion behaves iteratively: no stack growth.
    machine = compiler.machine()
    result = machine.run(sym("exptl"), [2, 100, 1])
    print(f"(exptl 2 100 1) = {result}")
    print(f"instructions executed : {machine.instructions}")
    print(f"abstract cycles       : {machine.cycles}")
    print(f"stack high-water mark : {machine.max_stack} words"
          f"  (constant no matter how large n is)")
    print(f"heap allocations      : {machine.heap.total_allocations()}")

    # 4. The phase pipeline that ran (the paper's Table 1):
    print()
    print(compiler.phase_report())


if __name__ == "__main__":
    main()
