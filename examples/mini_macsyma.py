"""A miniature MACSYMA: the workload that motivated the whole effort.

"Eventually there arose an application for LISP that required fairly large
amounts of numerical computation in addition to powerful symbolic
manipulation: the MACSYMA symbolic algebra system."  (Section 1)

This example compiles a small symbolic-algebra kernel -- polynomials as
coefficient lists, with symbolic arithmetic, differentiation, and *numeric*
evaluation via a declared-float Horner loop -- and runs a mixed
symbolic/numeric job: build (x+1)^4 symbolically, differentiate it twice,
then evaluate the result numerically over a grid.

Run:  python examples/mini_macsyma.py
"""

from repro import Compiler, CompilerOptions
from repro.datum import from_list, sym, to_list

ALGEBRA = """
    ;; Polynomials are coefficient lists, lowest power first:
    ;; (a0 a1 a2 ...) represents a0 + a1*x + a2*x^2 + ...

    (defun poly-add (p q)
      (cond ((null p) q)
            ((null q) p)
            (t (cons (+ (car p) (car q))
                     (poly-add (cdr p) (cdr q))))))

    (defun poly-scale (k p)
      (if (null p) nil (cons (* k (car p)) (poly-scale k (cdr p)))))

    (defun poly-shift (p)
      ;; Multiply by x.
      (cons 0 p))

    (defun poly-mul (p q)
      (if (null p)
          nil
          (poly-add (poly-scale (car p) q)
                    (poly-shift (poly-mul (cdr p) q)))))

    (defun poly-pow (p n)
      (if (zerop n) '(1) (poly-mul p (poly-pow p (- n 1)))))

    (defun poly-deriv (p)
      ;; d/dx sum(ai x^i) = sum(i*ai x^(i-1))
      (prog (i acc)
        (setq i 1)
        (setq p (cdr p))
        (setq acc nil)
        loop
        (if (null p) (return (reverse acc)))
        (setq acc (cons (* i (car p)) acc))
        (setq i (+ i 1))
        (setq p (cdr p))
        (go loop)))

    (defun poly-eval (p x)
      ;; Numeric evaluation: Horner over declared floats -- this is the
      ;; "intense numerical crunching" half, compiled to raw FADD/FMULT.
      (declare (single-float x))
      (poly-eval-loop (reverse p) x 0.0))

    (defun poly-eval-loop (rev x acc)
      (declare (single-float x) (single-float acc))
      (if (null rev)
          acc
          (poly-eval-loop (cdr rev) x
                          (+$f (*$f acc x) (float (car rev))))))
"""


def poly_text(coefficients) -> str:
    terms = []
    for power, coefficient in enumerate(coefficients):
        if coefficient == 0:
            continue
        if power == 0:
            terms.append(f"{coefficient}")
        elif power == 1:
            terms.append(f"{coefficient}x" if coefficient != 1 else "x")
        else:
            head = "" if coefficient == 1 else f"{coefficient}"
            terms.append(f"{head}x^{power}")
    return " + ".join(terms) if terms else "0"


def main() -> None:
    compiler = Compiler(CompilerOptions())
    compiler.compile_source(ALGEBRA)
    machine = compiler.machine()

    x_plus_1 = from_list([1, 1])  # 1 + x
    p = machine.run(sym("poly-pow"), [x_plus_1, 4])
    print("p(x)   = (x+1)^4        =", poly_text(to_list(p)))

    dp = machine.run(sym("poly-deriv"), [p])
    print("p'(x)  =", poly_text(to_list(dp)))
    ddp = machine.run(sym("poly-deriv"), [dp])
    print("p''(x) =", poly_text(to_list(ddp)))

    print()
    print("numeric evaluation of p'' on a grid (compiled Horner loop):")
    header_dp, header_ddp = "p'(x)", "p''(x)"
    print(f"{'x':>6s} {'p(x)':>10s} {header_dp:>10s} {header_ddp:>10s}")
    for tenth in range(-20, 21, 5):
        x = tenth / 10.0
        px = machine.run(sym("poly-eval"), [p, x])
        dpx = machine.run(sym("poly-eval"), [dp, x])
        ddpx = machine.run(sym("poly-eval"), [ddp, x])
        assert abs(px - (x + 1) ** 4) < 1e-9
        assert abs(dpx - 4 * (x + 1) ** 3) < 1e-9
        assert abs(ddpx - 12 * (x + 1) ** 2) < 1e-9
        print(f"{x:>6.1f} {px:>10.3f} {dpx:>10.3f} {ddpx:>10.3f}")

    stats = machine.stats()
    print()
    print(f"whole job: {stats['instructions']} instructions, "
          f"{stats['cycles']} cycles, "
          f"{stats['heap_allocations'].get('cons', 0)} conses, "
          f"{stats['heap_allocations'].get('number-box', 0)} number boxes")
    print("symbolic half allocates list structure; the numeric half runs")
    print("in raw floats with pdl-allocated intermediates -- the two worlds")
    print("the paper's Section 6 interfaces 'at least cost'.")


if __name__ == "__main__":
    main()
