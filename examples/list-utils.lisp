;;; List-structure utilities: the "LISP pointer world" side of the
;;; compiler (generic operations, cons allocation, recursion).

(defun my-length (l)
  (if (null l)
      0
      (1+ (my-length (cdr l)))))

(defun my-append (a b)
  (if (null a)
      b
      (cons (car a) (my-append (cdr a) b))))

(defun my-reverse (l)
  (let ((acc nil))
    (prog ()
      loop
      (if (null l) (return acc))
      (setq acc (cons (car l) acc))
      (setq l (cdr l))
      (go loop))))

(defun count-atoms (tree)
  (if (atom tree)
      1
      (+& (count-atoms (car tree)) (count-atoms (cdr tree)))))
