"""The S-1 as the paper describes it: "a multiprocessing supercomputer".

"The standard configuration is a multiprocessor; synchronization
instructions are available to the user."  This example runs a data-parallel
numeric job across simulated processors sharing one heap and the special-
variable globals, using (lock ...) / (unlock ...) to combine results.

Run:  python examples/multiprocessing_s1.py
"""

from repro import Compiler
from repro.datum import sym
from repro.machine import MultiMachine
from repro.primitives import LispVector

SOURCE = """
    (defvar *grand-total* 0.0)

    (defun partial-dot (a b start end)
      ;; Dot product over [start, end), accumulated in raw floats.
      (let ((sum 0.0) (i start))
        (prog ()
          loop
          (if (>= i end) (return sum))
          (setq sum (+$f sum (*$f (vref a i) (vref b i))))
          (setq i (+ i 1))
          (go loop))))

    (defun worker (a b start end)
      ;; Compute a slice, then merge into the shared total under a lock.
      (let ((mine (partial-dot a b start end)))
        (lock 'total)
        (setq *grand-total* (+ *grand-total* mine))
        (unlock 'total)
        mine))
"""


def main() -> None:
    n = 240
    a = LispVector([float(i % 9) for i in range(n)])
    b = LispVector([float(i % 5) for i in range(n)])
    expected = sum(x * y for x, y in zip(a.data, b.data))

    compiler = Compiler()
    compiler.compile_source(SOURCE)

    print(f"dot product of two {n}-vectors, split across processors")
    print(f"{'processors':>10s} {'elapsed cycles':>15s} "
          f"{'total instructions':>20s} {'speedup':>8s}")
    baseline = None
    for processors in (1, 2, 4, 8):
        machine = MultiMachine(compiler.program, processors=processors,
                               quantum=16)
        machine.define_global(sym("*grand-total*"), 0.0)
        chunk = n // processors
        tasks = [(sym("worker"), [a, b, k * chunk, (k + 1) * chunk])
                 for k in range(processors)]
        machine.run_tasks(tasks)
        total = machine.global_value(sym("*grand-total*"))
        assert abs(total - expected) < 1e-6, (total, expected)
        elapsed = machine.elapsed_cycles()
        if baseline is None:
            baseline = elapsed
        print(f"{processors:>10d} {elapsed:>15d} "
              f"{machine.total_instructions():>20d} "
              f"{baseline / elapsed:>7.1f}x")
    print()
    print(f"every configuration computed the same total: {expected}")
    print("elapsed cycles fall near-linearly with processor count; the")
    print("lock serializes only the final merge.")


if __name__ == "__main__":
    main()
