;;; Iteration via prog/go (the tail-call and progbody machinery) plus
;;; fixnum arithmetic -- exercises jump-strategy lambdas and CMPBR.

(defun triangle (n)
  ;; 1 + 2 + ... + n, iteratively.
  (let ((sum 0) (i 1))
    (prog ()
      loop
      (if (>& i n) (return sum))
      (setq sum (+& sum i))
      (setq i (1+ i))
      (go loop))))

(defun gcd& (a b)
  (prog ()
    loop
    (if (=& b 0) (return a))
    (let ((r (rem a b)))
      (setq a b)
      (setq b r))
    (go loop)))

(defun fib (n)
  (if (<& n 2)
      n
      (+& (fib (-& n 1)) (fib (-& n 2)))))
