"""Retargeting the compiler: the paper's portability claim, live.

"We expect to be able to redirect the compiler to other target
architectures such as the VAX or PDP-10 with relatively little effort."
(Section 1)  "Jonathan Rees has modified an early version of the S-1 LISP
compiler to produce code for the DEC VAX." (Section 5)

The same function is compiled for the S-1, a VAX-like 3-address machine,
and a PDP-10-like 2-address machine; the machine-inspired sin->sinc rewrite
and the RT-register staging follow the target description, and all three
compute the same answer.

Run:  python examples/retargeting.py
"""

from repro import Compiler, CompilerOptions
from repro.datum import sym

SOURCE = """
    (defun wave (x)
      (declare (single-float x))
      (+$f (sin$f (*$f x x)) 1.0))
"""


def main() -> None:
    results = {}
    for target in ("s1", "vax", "pdp10"):
        compiler = Compiler(CompilerOptions(target=target, transcript=True))
        compiler.compile_source(SOURCE)
        compiled = compiler.functions[sym("wave")]
        machine = compiler.machine()
        results[target] = machine.run(sym("wave"), [0.7])

        listing = compiled.listing()
        print("=" * 64)
        print(f"target: {target}")
        print("=" * 64)
        print(compiled.optimized_source)
        print()
        print(listing)
        print()
        rules = compiled.transcript.rules_fired()
        from repro.target.registers import RTA, RTB

        rt_used = any(operand in (("reg", RTA), ("reg", RTB))
                      for instruction in compiled.code.instructions
                      for operand in instruction.operands)
        print(f"sin->sinc fired: {'META-SIN-TO-SINC' in rules}   "
              f"RT staging used: {rt_used}   "
              f"result: {results[target]:.9f}")
        print()

    spread = max(results.values()) - min(results.values())
    assert spread < 1e-6, results
    print(f"all targets agree to {spread:.2e} "
          "(the S-1 differs in the last bits by design: its sine runs in "
          "cycles through the truncated 1/2pi constant)")


if __name__ == "__main__":
    main()
