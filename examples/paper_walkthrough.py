"""The paper's Section 7 worked example, end to end.

Reproduces, for the paper's ``testfn``:

1. the optimizer's debugging transcript (the ``;**** Optimizing this form``
   listing),
2. the final transformed source,
3. the generated parenthesized assembly (the analogue of Table 4),
4. an actual run, showing the pdl-number machinery at work: the
   intermediates d, e, and the max$f argument live on the stack, and only
   the returned value is heap-allocated.

Run:  python examples/paper_walkthrough.py
"""

from repro import Compiler, CompilerOptions
from repro.datum import sym

TESTFN = """
    (defun frotz (d e m) nil)   ; stand-in for the user function

    (defun testfn (a &optional (b 3.0) (c a))
      (let ((d (+$f a b c)) (e (*$f a b c)))
        (let ((q (sin$f e)))
          (frotz d e (max$f d e))
          q)))
"""


def main() -> None:
    compiler = Compiler(CompilerOptions(transcript=True))
    compiler.compile_source(TESTFN)
    compiled = compiler.functions[sym("testfn")]

    print("=" * 72)
    print("1. Optimizer transcript (compare the paper's Section 7)")
    print("=" * 72)
    print(compiled.transcript.render())
    print()

    print("=" * 72)
    print("2. Resulting program (paper: '(lambda (a &optional (b 3.0) (c a))")
    print("   ((lambda (d e) (progn (frotz d e (max$f d e))")
    print("   (sinc$f (*$f 0.159154942 e)))) (+$f (+$f c b) a)")
    print("   (*$f (*$f c b) a)))')")
    print("=" * 72)
    print(compiled.optimized_source)
    print()

    print("=" * 72)
    print("3. Generated code (the analogue of Table 4)")
    print("=" * 72)
    print(compiled.listing())
    print()

    print("=" * 72)
    print("4. Execution: (testfn 0.25), one / two / three arguments")
    print("=" * 72)
    for args in ([0.25], [0.25, 1.5], [0.25, 1.5, 4.0]):
        machine = compiler.machine()
        result = machine.run(sym("testfn"), list(args))
        stats = machine.stats()
        boxes = stats["heap_allocations"].get("number-box", 0)
        print(f"  (testfn {' '.join(map(str, args))}) = {result:.9f}   "
              f"[{stats['instructions']} instrs, "
              f"{boxes} heap boxes ({len(args)} args + 1 result), "
              f"{stats['opcodes'].get('PDLBOX', 0)} pdl installs]")
    print()
    print("The optional-argument dispatch (Table 4's L0024/L0022/L0020) and")
    print("the pdl-number installs ('Install value for PDL-allocated number')")
    print("are both visible in the listing above.")


if __name__ == "__main__":
    main()
