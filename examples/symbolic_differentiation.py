"""Symbolic computation -- the traditional Lisp workload (the paper's other
half: "a mixture of symbolic heuristic calculations and intense numerical
crunching").

A small symbolic differentiator written in the dialect, compiled and run on
the simulated S-1: list structure, recursion, caseq dispatch, quoted data.

Run:  python examples/symbolic_differentiation.py
"""

from repro import Compiler
from repro.datum import sym
from repro.reader import read, write_to_string

DIFF = """
    (defun simplify-sum (a b)
      (cond ((eql a 0) b)
            ((eql b 0) a)
            ((and (numberp a) (numberp b)) (+ a b))
            (t (list '+ a b))))

    (defun simplify-product (a b)
      (cond ((eql a 0) 0)
            ((eql b 0) 0)
            ((eql a 1) b)
            ((eql b 1) a)
            ((and (numberp a) (numberp b)) (* a b))
            (t (list '* a b))))

    (defun deriv (expr var)
      (cond ((numberp expr) 0)
            ((symbolp expr) (if (eq expr var) 1 0))
            (t (caseq (car expr)
                 ((+) (simplify-sum (deriv (cadr expr) var)
                                    (deriv (caddr expr) var)))
                 ((*) (simplify-sum
                        (simplify-product (cadr expr)
                                          (deriv (caddr expr) var))
                        (simplify-product (deriv (cadr expr) var)
                                          (caddr expr))))
                 ((expt) (simplify-product
                           (simplify-product (caddr expr)
                                             (list 'expt (cadr expr)
                                                   (- (caddr expr) 1)))
                           (deriv (cadr expr) var)))
                 (t (list 'd/dx expr))))))
"""

EXPRESSIONS = [
    "x",
    "42",
    "(+ x 1)",
    "(* 3 x)",
    "(* x x)",
    "(+ (* 2 x) (* x y))",
    "(expt x 3)",
    "(+ (expt x 2) (* 5 x))",
    "(* (+ x 1) (+ x 2))",
]


def main() -> None:
    compiler = Compiler()
    compiler.compile_source(DIFF)
    machine = compiler.machine()

    print(f"{'expression':>24s}   d/dx")
    print("-" * 60)
    for text in EXPRESSIONS:
        expr = read(text)
        result = machine.run(sym("deriv"), [expr, sym("x")])
        print(f"{text:>24s}   {write_to_string(result)}")

    stats = machine.stats()
    print()
    print(f"total instructions: {stats['instructions']}, "
          f"cycles: {stats['cycles']}, "
          f"cons cells allocated: {stats['heap_allocations'].get('cons', 0)}")


if __name__ == "__main__":
    main()
