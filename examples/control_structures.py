"""Control structures as the paper treats them: "where most compilers might
translate a complex control structure into a network of tags and goto
statements within a begin-end block, the S-1 LISP compiler will translate
the same structure into an arrangement of procedure definitions and calls.
(The tail-recursive language semantics are crucial here.)"

This example compiles a token-stream state machine three ways --
mutually tail-recursive procedures, prog/go, and catch/throw for the error
exit -- and shows they cost the same: procedures-as-control really does
compile to jumps.

Run:  python examples/control_structures.py
"""

from repro import Compiler
from repro.datum import from_list, sym

SOURCE = """
    ;; Count words in a stream of tokens: 0 = letter, 1 = space, 2 = end,
    ;; anything else is an error.

    ;; Style 1: control as mutually tail-recursive procedures.
    (defun fsm/between (stream count)
      (caseq (car stream)
        ((0) (fsm/in-word (cdr stream) (+ count 1)))
        ((1) (fsm/between (cdr stream) count))
        ((2) count)
        (t (throw 'bad-token (car stream)))))
    (defun fsm/in-word (stream count)
      (caseq (car stream)
        ((0) (fsm/in-word (cdr stream) count))
        ((1) (fsm/between (cdr stream) count))
        ((2) count)
        (t (throw 'bad-token (car stream)))))
    (defun count-words/procedures (stream)
      (catch 'bad-token (fsm/between stream 0)))

    ;; Style 2: the same machine as prog/go (tags and gotos).
    (defun count-words/prog (stream)
      (catch 'bad-token
        (prog (count token in-word)
          (setq count 0)
          (setq in-word nil)
          next
          (setq token (car stream))
          (setq stream (cdr stream))
          (caseq token
            ((0) (progn (unless in-word (setq count (+ count 1)))
                        (setq in-word t)))
            ((1) (setq in-word nil))
            ((2) (return count))
            (t (throw 'bad-token token)))
          (go next))))
"""


def tokens(words, bad=False):
    items = []
    for length in words:
        items.extend([0] * length)
        items.append(1)
    if bad:
        items.append(99)
    items.append(2)
    return from_list(items)


def main() -> None:
    compiler = Compiler()
    compiler.compile_source(SOURCE)

    stream = tokens([3, 5, 2, 4, 1])
    print("input: five words of lengths 3 5 2 4 1")
    print(f"{'style':>22s} {'result':>7s} {'instructions':>13s} "
          f"{'stack high-water':>17s}")
    for fn in ("count-words/procedures", "count-words/prog"):
        machine = compiler.machine()
        result = machine.run(sym(fn), [stream])
        print(f"{fn:>22s} {result:>7d} {machine.instructions:>13d} "
              f"{machine.max_stack:>17d}")

    print()
    print("procedures-as-control costs the same as tags-and-gotos, and both")
    print("run in constant stack: the tail calls ARE the gotos.")

    bad = tokens([2, 2], bad=True)
    machine = compiler.machine()
    result = machine.run(sym("count-words/procedures"), [bad])
    print()
    print(f"error exit through catch/throw: bad token -> {result}")


if __name__ == "__main__":
    main()
