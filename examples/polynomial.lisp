;;; Numeric kernels in the paper's dialect: Horner evaluation and the
;;; worked Section 7 flavor of float arithmetic.  Compile with
;;;   python -m repro batch examples/polynomial.lisp --trace trace.json

(defun poly-eval (x n)
  ;; Horner evaluation of 1 + x + x^2 + ... + x^n
  (declare (single-float x))
  (let ((acc 0.0))
    (dotimes (i n acc)
      (setq acc (+$f (*$f acc x) 1.0)))))

(defun quadratic (a b c x)
  (declare (single-float a) (single-float b) (single-float c)
           (single-float x))
  (+$f (*$f a (*$f x x)) (+$f (*$f b x) c 0.0)))

(defun average3 (a b c)
  (declare (single-float a) (single-float b) (single-float c))
  (/$f (+$f a b c) 3.0))
